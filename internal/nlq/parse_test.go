package nlq

import (
	"errors"
	"testing"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/datagen"
	"github.com/deepeye/deepeye/internal/transform"
	"github.com/deepeye/deepeye/internal/vizql"
)

// evalSchema profiles the datagen NLQ eval table (orders: region,
// product, date, sales, profit, units).
func evalSchema(t testing.TB) Schema {
	t.Helper()
	tab, err := datagen.NLQEval(0.05)
	if err != nil {
		t.Fatalf("NLQEval: %v", err)
	}
	return SchemaFromTable(tab)
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  Show total SALES, by Region!  "); got != "show total sales by region" {
		t.Errorf("Normalize = %q", got)
	}
	if got := Normalize("sales   by region"); got != Normalize("Sales by Region?") {
		t.Errorf("normalization not canonical: %q", got)
	}
}

func TestParseAccepts(t *testing.T) {
	sc := evalSchema(t)
	cases := []struct {
		query string
		check func(t *testing.T, r *Result)
	}{
		{"total sales by region", func(t *testing.T, r *Result) {
			p := r.Parsed
			if !p.HasAgg || p.Agg != transform.AggSum {
				t.Errorf("agg = %v/%v, want stated SUM", p.Agg, p.HasAgg)
			}
			if p.binding("sales") == nil || p.binding("region") == nil {
				t.Errorf("bindings = %+v, want sales and region", p.Bindings)
			}
			top := r.Candidates[0].Query
			if top.Viz != chart.Bar || top.X != "region" || top.Y != "sales" {
				t.Errorf("top candidate = %+v", top)
			}
		}},
		{"monthly average sales by date", func(t *testing.T, r *Result) {
			if len(r.Candidates) != 1 {
				t.Fatalf("candidates = %d, want 1", len(r.Candidates))
			}
			q := r.Candidates[0].Query
			if q.Viz != chart.Line || q.Spec.Kind != transform.KindBinUnit ||
				q.Spec.Unit != transform.ByMonth || q.Spec.Agg != transform.AggAvg ||
				q.Order != transform.SortX {
				t.Errorf("trend candidate = %+v", q)
			}
		}},
		{"sales versus profit", func(t *testing.T, r *Result) {
			if len(r.Candidates) != 1 {
				t.Fatalf("candidates = %d, want 1", len(r.Candidates))
			}
			q := r.Candidates[0].Query
			// Equal-strength bindings keep first-mention order: sales on X.
			if q.Viz != chart.Scatter || q.X != "sales" || q.Y != "profit" {
				t.Errorf("scatter candidate = %+v", q)
			}
		}},
		{"top 5 regions by total sales", func(t *testing.T, r *Result) {
			q := r.Candidates[0].Query
			if q.Viz != chart.Bar || q.X != "region" || q.Limit != 5 || !q.Desc || q.Order != transform.SortY {
				t.Errorf("top-N candidate = %+v", q)
			}
		}},
		{"share of total sales by region", func(t *testing.T, r *Result) {
			if q := r.Candidates[0].Query; q.Viz != chart.Pie {
				t.Errorf("share candidate = %+v, want pie", q)
			}
		}},
		{"total sales by region excluding east", func(t *testing.T, r *Result) {
			q := r.Candidates[0].Query
			if len(q.Filters) != 1 {
				t.Fatalf("filters = %+v", q.Filters)
			}
			f := q.Filters[0]
			// The canonical label spelling comes back despite the lowercase
			// query token.
			if f.Col != "region" || f.Op != vizql.FilterNe || f.Str != "East" {
				t.Errorf("label filter = %+v", f)
			}
		}},
		{"monthly sales by date since 2016", func(t *testing.T, r *Result) {
			q := r.Candidates[0].Query
			if len(q.Filters) != 1 {
				t.Fatalf("filters = %+v", q.Filters)
			}
			f := q.Filters[0]
			if !f.Year || f.Col != "date" || f.Op != vizql.FilterGe || f.Str != "2016" {
				t.Errorf("year filter = %+v", f)
			}
		}},
		{"total sales by region excluding 2016", func(t *testing.T, r *Result) {
			f := r.Candidates[0].Query.Filters[0]
			// The year predicate lands on the schema's temporal column even
			// though X is categorical.
			if !f.Year || f.Col != "date" || f.Op != vizql.FilterNe {
				t.Errorf("year filter = %+v", f)
			}
		}},
		{"total sales by region above 500", func(t *testing.T, r *Result) {
			f := r.Candidates[0].Query.Filters[0]
			if f.Col != "sales" || f.Op != vizql.FilterGt || f.Num != 500 {
				t.Errorf("threshold filter = %+v", f)
			}
		}},
		{"regions with more than 1000 units", func(t *testing.T, r *Result) {
			p := r.Parsed
			if len(p.MeasureFilters) != 1 || p.MeasureFilters[0].Op != vizql.FilterGt || p.MeasureFilters[0].Num != 1000 {
				t.Errorf("measure filters = %+v", p.MeasureFilters)
			}
		}},
		{"count by region", func(t *testing.T, r *Result) {
			if len(r.Candidates) != 1 {
				t.Fatalf("candidates = %d, want 1", len(r.Candidates))
			}
			q := r.Candidates[0].Query
			// "count" reads as both the aggregate and a bar hint.
			if q.Viz != chart.Bar || q.Spec.Agg != transform.AggCnt || q.X != "region" || q.Y != "region" {
				t.Errorf("count candidate = %+v", q)
			}
		}},
		{"sales by region", func(t *testing.T, r *Result) {
			// Unstated aggregate: the SUM and AVG readings both enumerate,
			// with SUM bars first, and the ambiguity is reported.
			if len(r.Candidates) < 2 {
				t.Fatalf("candidates = %d, want the SUM/AVG fan-out", len(r.Candidates))
			}
			if q := r.Candidates[0].Query; q.Spec.Agg != transform.AggSum || q.Viz != chart.Bar {
				t.Errorf("top candidate = %+v, want SUM bars", q)
			}
			found := false
			for _, a := range r.Ambiguities {
				if a.Slot == "aggregate" {
					found = true
				}
			}
			if !found {
				t.Errorf("ambiguities = %+v, want an aggregate slot", r.Ambiguities)
			}
		}},
		{"delay over time", func(t *testing.T, r *Result) {
			// "over" with no number is a line hint, not a comparative; the
			// temporal synonym binds the date column.
			p := r.Parsed
			if len(p.MeasureFilters) != 0 {
				t.Errorf("measure filters = %+v, want none", p.MeasureFilters)
			}
			if len(p.Charts) != 1 || p.Charts[0] != chart.Line {
				t.Errorf("charts = %v, want line", p.Charts)
			}
			if p.binding("date") == nil {
				t.Errorf("bindings = %+v, want date via synonym", p.Bindings)
			}
		}},
		{"Please plot the total PROFIT by product!", func(t *testing.T, r *Result) {
			q := r.Candidates[0].Query
			if q.X != "product" || q.Y != "profit" {
				t.Errorf("decorated query candidate = %+v", q)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.query, func(t *testing.T) {
			r, err := Parse(c.query, sc, Options{})
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.query, err)
			}
			if len(r.Candidates) == 0 {
				t.Fatalf("Parse(%q): no candidates", c.query)
			}
			for _, cand := range r.Candidates {
				if cand.Confidence <= 0 || cand.Confidence > 1 {
					t.Errorf("confidence %v out of (0,1] for %s", cand.Confidence, cand.Query.Key())
				}
			}
			c.check(t, r)
		})
	}
}

func TestParseRejects(t *testing.T) {
	sc := evalSchema(t)
	for _, query := range []string{
		"",
		"    ",
		"???",
		"the of and a per",
		"zzz qqq blorp",
		"please show me",
	} {
		_, err := Parse(query, sc, Options{})
		if !errors.Is(err, ErrNoIntent) {
			t.Errorf("Parse(%q) err = %v, want ErrNoIntent", query, err)
		}
	}
}

// TestParseDeterministic pins that repeated parses yield byte-identical
// candidate orderings (map iteration must not leak into results).
func TestParseDeterministic(t *testing.T) {
	sc := evalSchema(t)
	queries := []string{"sales by region", "sales versus profit", "monthly sales by date", "units by product excluding 2016"}
	for _, q := range queries {
		base, err := Parse(q, sc, Options{})
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		for i := 0; i < 20; i++ {
			r, err := Parse(q, sc, Options{})
			if err != nil {
				t.Fatalf("Parse(%q): %v", q, err)
			}
			if len(r.Candidates) != len(base.Candidates) {
				t.Fatalf("Parse(%q) candidate count varies", q)
			}
			for j := range r.Candidates {
				if r.Candidates[j].Query.Key() != base.Candidates[j].Query.Key() {
					t.Fatalf("Parse(%q) ordering varies at %d: %q vs %q",
						q, j, r.Candidates[j].Query.Key(), base.Candidates[j].Query.Key())
				}
			}
		}
	}
}

func TestMaxFanout(t *testing.T) {
	sc := evalSchema(t)
	r, err := Parse("sales by region", sc, Options{MaxFanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) != 1 {
		t.Errorf("candidates = %d, want fan-out capped at 1", len(r.Candidates))
	}
}
