// Package nlq turns a natural-language query ("monthly sales by region
// as a line chart, excluding 2019") into ranked concrete vizql specs.
// The pipeline is deterministic and stdlib-only: a tokenizer + lexicon
// matcher binds tokens to columns, chart intents, aggregate verbs, time
// granularities, and filter phrases (parse.go); the matcher emits a
// partial spec plus an explicit ambiguity set; an enumerator expands
// every ambiguity combination into concrete candidate queries with a
// parse-confidence score and a record of which completions were guessed
// (enum.go). Execution and ranking of the candidates stay in the root
// package, which blends confidence with the selection pipeline exactly
// as Search blends keyword affinity with partial-order position.
//
// This file is the shared lexicon. The chart-intent, granularity, and
// stopword vocabularies here are the single source of truth for both
// keyword Search (search.go rebinds on them) and the NL parser, so the
// two interfaces cannot drift.
package nlq

import (
	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/transform"
)

// chartVocabulary maps intent words to chart types (shared with Search;
// the historical parseIntent table, verbatim).
var chartVocabulary = map[string]chart.Type{
	"trend": chart.Line, "over": chart.Line, "timeline": chart.Line, "line": chart.Line,
	"proportion": chart.Pie, "share": chart.Pie, "percentage": chart.Pie, "pie": chart.Pie,
	"breakdown":   chart.Pie,
	"correlation": chart.Scatter, "correlate": chart.Scatter, "versus": chart.Scatter,
	"vs": chart.Scatter, "scatter": chart.Scatter, "relationship": chart.Scatter,
	"compare": chart.Bar, "comparison": chart.Bar, "distribution": chart.Bar,
	"histogram": chart.Bar, "bar": chart.Bar, "count": chart.Bar, "top": chart.Bar,
}

// ChartWord resolves a chart-intent word ("trend" → line).
func ChartWord(w string) (chart.Type, bool) {
	t, ok := chartVocabulary[w]
	return t, ok
}

// unitVocabulary maps granularity words to bin-unit keywords (shared
// with Search; the historical parseIntent table, verbatim).
var unitVocabulary = map[string]string{
	"minute": "MINUTE", "hourly": "HOUR", "hour": "HOUR", "daily": "DAY", "day": "DAY",
	"weekly": "WEEK", "week": "WEEK", "monthly": "MONTH", "month": "MONTH",
	"quarterly": "QUARTER", "quarter": "QUARTER", "yearly": "YEAR", "year": "YEAR",
	"annual": "YEAR",
}

// UnitKeyword resolves a granularity word to its bin-unit keyword
// ("monthly" → "MONTH"), the form Search matches against spec text.
func UnitKeyword(w string) (string, bool) {
	u, ok := unitVocabulary[w]
	return u, ok
}

// unitOfKeyword maps the keyword form to the transform unit.
var unitOfKeyword = map[string]transform.BinUnit{
	"MINUTE": transform.ByMinute, "HOUR": transform.ByHour, "DAY": transform.ByDay,
	"WEEK": transform.ByWeek, "MONTH": transform.ByMonth,
	"QUARTER": transform.ByQuarter, "YEAR": transform.ByYear,
}

// UnitWord resolves a granularity word directly to a transform unit.
func UnitWord(w string) (transform.BinUnit, bool) {
	kw, ok := unitVocabulary[w]
	if !ok {
		return 0, false
	}
	u, ok := unitOfKeyword[kw]
	return u, ok
}

// searchStopwords are the words keyword Search ignores entirely (the
// historical parseIntent table, verbatim).
var searchStopwords = map[string]bool{
	"by": true, "of": true, "the": true, "a": true, "an": true, "per": true,
	"for": true, "in": true, "show": true, "me": true, "and": true, "with": true,
}

// SearchStopword reports whether keyword Search ignores the word.
func SearchStopword(w string) bool { return searchStopwords[w] }

// ChartVocabulary returns a copy of the chart-intent table, so callers
// (and the differential tests pinning Search's historical behavior) can
// compare it entry-for-entry without aliasing the live map.
func ChartVocabulary() map[string]chart.Type {
	out := make(map[string]chart.Type, len(chartVocabulary))
	for k, v := range chartVocabulary {
		out[k] = v
	}
	return out
}

// UnitVocabulary returns a copy of the granularity table.
func UnitVocabulary() map[string]string {
	out := make(map[string]string, len(unitVocabulary))
	for k, v := range unitVocabulary {
		out[k] = v
	}
	return out
}

// SearchStopwords returns a copy of the Search stopword set.
func SearchStopwords() map[string]bool {
	out := make(map[string]bool, len(searchStopwords))
	for k := range searchStopwords {
		out[k] = true
	}
	return out
}

// aggVocabulary maps aggregate verbs to operators. "count" doubles as a
// chart-intent word (bar) in chartVocabulary; the NL parser records
// both readings.
var aggVocabulary = map[string]transform.Agg{
	"total": transform.AggSum, "sum": transform.AggSum, "summed": transform.AggSum,
	"cumulative": transform.AggSum, "overall": transform.AggSum,
	"average": transform.AggAvg, "avg": transform.AggAvg, "mean": transform.AggAvg,
	"typical": transform.AggAvg,
	"count":   transform.AggCnt, "number": transform.AggCnt, "frequency": transform.AggCnt,
	"many": transform.AggCnt, // "how many … per …"
}

// AggWord resolves an aggregate verb ("total" → SUM).
func AggWord(w string) (transform.Agg, bool) {
	a, ok := aggVocabulary[w]
	return a, ok
}

// nlFillers are additional words the NL parser drops without counting
// them as unparsed — conversational filler that carries no intent. The
// search stopwords are a subset (checked separately so Search's set
// stays exactly its historical self).
var nlFillers = map[string]bool{
	"please": true, "plot": true, "chart": true, "graph": true, "draw": true,
	"display": true, "visualize": true, "visualise": true, "give": true,
	"i": true, "want": true, "see": true, "as": true, "to": true, "each": true,
	"every": true, "all": true, "what": true, "is": true, "are": true,
	"how": true, "my": true, "on": true, "at": true, "across": true,
	"between": true, "against": true,
}

// fillerWord reports whether the NL parser should drop the word
// silently (search stopword or conversational filler).
func fillerWord(w string) bool { return searchStopwords[w] || nlFillers[w] }

// typeSynonyms bind generic words to every column of a type with a weak
// score: "time"/"date" suggest the temporal axis without naming it.
var temporalSynonyms = map[string]bool{"time": true, "date": true, "timestamp": true}
