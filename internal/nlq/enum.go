package nlq

import (
	"fmt"
	"sort"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/transform"
	"github.com/deepeye/deepeye/internal/vizql"
)

// Candidate is one concrete completion of the partial spec: an
// executable query, the parse confidence of this particular completion,
// and a note per slot the enumerator had to guess.
type Candidate struct {
	Query       vizql.Query
	Confidence  float64
	Completions []string
}

// Options tunes parsing and enumeration.
type Options struct {
	// MaxFanout caps how many candidates the ambiguity expansion emits
	// (strongest kept). 0 means DefaultMaxFanout.
	MaxFanout int
}

// DefaultMaxFanout bounds the ambiguity expansion: generous enough for
// every two-way slot to multiply out, small enough that execution stays
// a handful of single passes.
const DefaultMaxFanout = 48

// Result is a full parse: the matcher's partial spec, the enumerated
// candidate completions (confidence-ordered), and the ambiguity set the
// expansion covered.
type Result struct {
	Parsed      *Parsed
	Candidates  []Candidate
	Ambiguities []Ambiguity
}

// Parse runs the matcher and the ambiguity enumerator over one query.
// ErrNoIntent (possibly wrapped) reports a query nothing could be
// extracted from; a non-nil Result can still carry zero candidates when
// intent existed but nothing executable could be completed (e.g. a
// schema with no usable columns).
func Parse(query string, sc Schema, opts Options) (*Result, error) {
	p, err := parseQuery(query, sc)
	if err != nil {
		return nil, err
	}
	r := &Result{Parsed: p}
	r.Candidates, r.Ambiguities = enumerate(p, sc, opts)
	return r, nil
}

// slotOption is one choice for an open slot with its confidence factor.
type slotOption struct {
	name    string
	factor  float64
	guessed bool
}

// clamp1 caps a binding score for use as a confidence factor.
func clamp1(s float64) float64 {
	if s > 1 {
		return 1
	}
	return s
}

const guessFactor = 0.7 // confidence factor for a slot filled with no evidence

// enumerate expands the partial spec's ambiguity combinations into
// concrete candidates.
func enumerate(p *Parsed, sc Schema, opts Options) ([]Candidate, []Ambiguity) {
	maxFan := opts.MaxFanout
	if maxFan <= 0 {
		maxFan = DefaultMaxFanout
	}
	var ambs []Ambiguity
	var cands []Candidate

	var measures, dims []Binding // dims: categorical + temporal bindings
	for _, b := range p.Bindings {
		c := sc.col(b.Column)
		if c == nil {
			continue
		}
		switch c.Type {
		case dataset.Numerical:
			measures = append(measures, b)
		case dataset.Categorical, dataset.Temporal:
			dims = append(dims, b)
		}
	}
	statedChart := func(t chart.Type) bool {
		for _, c := range p.Charts {
			if c == t {
				return true
			}
		}
		return false
	}
	numericCols := func() []string {
		var out []string
		for _, c := range sc.Cols {
			if c.Type == dataset.Numerical {
				out = append(out, c.Name)
			}
		}
		return out
	}

	scatterIntent := statedChart(chart.Scatter)
	groupSignals := len(dims) > 0 || p.HasUnit || p.TopN > 0 || p.HasAgg

	if scatterIntent || (len(measures) >= 2 && !groupSignals && len(p.Charts) == 0) {
		cands = append(cands, enumScatter(p, sc, measures, numericCols(), &ambs)...)
	}
	if !scatterIntent || groupSignals {
		cands = append(cands, enumGrouped(p, sc, measures, dims, numericCols(), statedChart, &ambs)...)
	}

	// Dedupe identical completions keeping the strongest confidence,
	// then order by confidence (key breaks ties deterministically).
	best := map[string]int{}
	var out []Candidate
	for _, c := range cands {
		k := c.Query.Key()
		if i, ok := best[k]; ok {
			if c.Confidence > out[i].Confidence {
				out[i] = c
			}
			continue
		}
		best[k] = len(out)
		out = append(out, c)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return out[a].Query.Key() < out[b].Query.Key()
	})
	if len(out) > maxFan {
		out = out[:maxFan]
	}
	// The per-combination expansion can note the same slot repeatedly;
	// keep the first record per slot.
	seenSlot := map[string]bool{}
	dedupAmbs := ambs[:0]
	for _, a := range ambs {
		if seenSlot[a.Slot] {
			continue
		}
		seenSlot[a.Slot] = true
		dedupAmbs = append(dedupAmbs, a)
	}
	return out, dedupAmbs
}

// enumScatter expands the two-measure raw-plot reading.
func enumScatter(p *Parsed, sc Schema, measures []Binding, numeric []string, ambs *[]Ambiguity) []Candidate {
	var xOpts, yOpts []slotOption
	switch {
	case len(measures) >= 2:
		xOpts = []slotOption{{name: measures[0].Column, factor: clamp1(measures[0].Score)}}
		for _, m := range measures[1:] {
			yOpts = append(yOpts, slotOption{name: m.Column, factor: clamp1(m.Score)})
		}
	case len(measures) == 1:
		xOpts = []slotOption{{name: measures[0].Column, factor: clamp1(measures[0].Score)}}
		for _, n := range numeric {
			if n != measures[0].Column {
				yOpts = append(yOpts, slotOption{name: n, factor: guessFactor, guessed: true})
			}
		}
	default:
		// Chart-only query ("scatter"): guess the first two numeric
		// columns in schema order.
		if len(numeric) >= 2 {
			xOpts = []slotOption{{name: numeric[0], factor: guessFactor, guessed: true}}
			yOpts = []slotOption{{name: numeric[1], factor: guessFactor, guessed: true}}
		}
	}
	if len(xOpts) == 0 || len(yOpts) == 0 {
		return nil
	}
	recordAmbiguity(ambs, "scatter-y", yOpts)
	var out []Candidate
	for _, y := range yOpts {
		x := xOpts[0]
		q := vizql.Query{Viz: chart.Scatter, X: x.name, Y: y.name, From: sc.Table}
		conf := x.factor * y.factor
		var notes []string
		if x.guessed {
			notes = append(notes, fmt.Sprintf("x=%s (guessed measure)", x.name))
		}
		if y.guessed {
			notes = append(notes, fmt.Sprintf("y=%s (guessed measure)", y.name))
		}
		conf, notes = attachFilters(&q, p, sc, x.name, conf, notes)
		out = append(out, Candidate{Query: q, Confidence: conf, Completions: notes})
	}
	return out
}

// enumGrouped expands the group/bin reading: a dimension on X, a
// measure (or tuple count) on Y.
func enumGrouped(p *Parsed, sc Schema, measures, dims []Binding, numeric []string, statedChart func(chart.Type) bool, ambs *[]Ambiguity) []Candidate {
	// X options: bound dimensions; under a stated granularity only
	// temporal ones qualify. With nothing bound, guess from the schema.
	var xOpts []slotOption
	for _, d := range dims {
		c := sc.col(d.Column)
		if p.HasUnit && c.Type != dataset.Temporal {
			continue
		}
		xOpts = append(xOpts, slotOption{name: d.Column, factor: clamp1(d.Score)})
	}
	if len(xOpts) == 0 {
		wantTemporal := p.HasUnit || statedChart(chart.Line)
		for _, c := range sc.Cols {
			if wantTemporal && c.Type == dataset.Temporal {
				xOpts = append(xOpts, slotOption{name: c.Name, factor: guessFactor, guessed: true})
			}
			if !wantTemporal && c.Type == dataset.Categorical && c.Labels != nil {
				xOpts = append(xOpts, slotOption{name: c.Name, factor: guessFactor, guessed: true})
			}
		}
		if len(xOpts) == 0 && !wantTemporal {
			for _, c := range sc.Cols {
				if c.Type == dataset.Temporal {
					xOpts = append(xOpts, slotOption{name: c.Name, factor: guessFactor, guessed: true})
				}
			}
		}
	}
	if len(xOpts) == 0 {
		return nil
	}
	recordAmbiguity(ambs, "dimension", xOpts)

	// Y options: bound measures; a stated SUM/AVG with no bound measure
	// guesses each numeric column; otherwise fall back to tuple counts.
	countMode := false
	var yOpts []slotOption
	for _, m := range measures {
		yOpts = append(yOpts, slotOption{name: m.Column, factor: clamp1(m.Score)})
	}
	if len(yOpts) == 0 && p.HasAgg && p.Agg != transform.AggCnt {
		for _, n := range numeric {
			yOpts = append(yOpts, slotOption{name: n, factor: guessFactor, guessed: true})
		}
	}
	if len(yOpts) == 0 {
		countMode = true
	} else {
		recordAmbiguity(ambs, "measure", yOpts)
	}

	// Aggregate options: stated wins; an unstated aggregate over a
	// measure is the classic SUM-vs-AVG ambiguity.
	type aggOption struct {
		agg     transform.Agg
		factor  float64
		guessed bool
	}
	var aggOpts []aggOption
	switch {
	case countMode || p.Agg == transform.AggCnt && p.HasAgg:
		aggOpts = []aggOption{{agg: transform.AggCnt, factor: 1}}
	case p.HasAgg:
		aggOpts = []aggOption{{agg: p.Agg, factor: 1}}
	default:
		aggOpts = []aggOption{
			{agg: transform.AggSum, factor: 0.9, guessed: true},
			{agg: transform.AggAvg, factor: 0.85, guessed: true},
		}
		*ambs = append(*ambs, Ambiguity{Slot: "aggregate", Options: []string{"SUM", "AVG"}})
	}

	var out []Candidate
	for _, x := range xOpts {
		xc := sc.col(x.name)
		for _, aggOpt := range aggOpts {
			yos := yOpts
			if countMode {
				// One-column histogram form: CNT selects the dimension
				// itself.
				yos = []slotOption{{name: x.name, factor: 1}}
			}
			for _, y := range yos {
				base := vizql.Query{X: x.name, Y: y.name, From: sc.Table}
				base.Spec.Agg = aggOpt.agg
				var notes []string
				unitFactor := 1.0
				if xc.Type == dataset.Temporal {
					base.Spec.Kind = transform.KindBinUnit
					base.Order = transform.SortX
					if p.HasUnit {
						base.Spec.Unit = p.Unit
					} else {
						base.Spec.Unit = transform.ByMonth
						unitFactor = 0.8
						notes = append(notes, "unit=MONTH (guessed)")
						*ambs = append(*ambs, Ambiguity{Slot: "unit", Options: []string{"MONTH"}})
					}
				} else {
					base.Spec.Kind = transform.KindGroup
					if p.TopN > 0 {
						base.Order = transform.SortY
						base.Desc = true
						base.Limit = p.TopN
					}
				}
				if x.guessed {
					notes = append(notes, fmt.Sprintf("x=%s (guessed dimension)", x.name))
				}
				if y.guessed {
					notes = append(notes, fmt.Sprintf("y=%s (guessed measure)", y.name))
				}
				if aggOpt.guessed {
					notes = append(notes, fmt.Sprintf("agg=%s (unstated)", aggOpt.agg))
				}
				conf := x.factor * y.factor * aggOpt.factor * unitFactor

				for _, co := range chartOptions(p, xc, aggOpt.agg, statedChart) {
					q := base
					q.Viz = co.typ
					c := conf * co.factor
					ns := notes
					if co.guessed {
						ns = append(ns[:len(ns):len(ns)], fmt.Sprintf("chart=%s (guessed)", co.typ))
					}
					measureCol := ""
					if !countMode {
						measureCol = y.name
					}
					c, ns = attachFilters(&q, p, sc, measureCol, c, ns)
					out = append(out, Candidate{Query: q, Confidence: c, Completions: ns})
				}
			}
		}
	}
	return out
}

// chartOption is one chart-type choice with its confidence factor.
type chartOption struct {
	typ     chart.Type
	factor  float64
	guessed bool
}

// chartOptions picks the chart types for a grouped/binned candidate:
// stated intents win (scatter excluded — it has its own reading);
// otherwise temporal bins default to line and categorical groups to bar
// (with pie as the second guess for summable quantities).
func chartOptions(p *Parsed, xc *Column, agg transform.Agg, statedChart func(chart.Type) bool) []chartOption {
	var stated []chartOption
	for _, t := range p.Charts {
		if t != chart.Scatter {
			stated = append(stated, chartOption{typ: t, factor: 1})
		}
	}
	if len(stated) > 0 {
		return stated
	}
	if xc.Type == dataset.Temporal {
		return []chartOption{{typ: chart.Line, factor: 0.9, guessed: true}}
	}
	opts := []chartOption{{typ: chart.Bar, factor: 0.9, guessed: true}}
	if p.TopN == 0 && agg != transform.AggAvg {
		opts = append(opts, chartOption{typ: chart.Pie, factor: 0.8, guessed: true})
	}
	return opts
}

// attachFilters resolves the parse's pending predicates onto a concrete
// candidate: label filters verbatim, year filters onto the temporal
// axis (the candidate's X when temporal, else the schema's first
// temporal column), measure filters onto the chosen measure. A
// predicate that cannot land (no temporal column, no measure) is
// dropped with a note and a confidence penalty rather than silently.
func attachFilters(q *vizql.Query, p *Parsed, sc Schema, measureCol string, conf float64, notes []string) (float64, []string) {
	q.Filters = append(q.Filters, p.Filters...)
	for _, f := range p.YearFilters {
		col := ""
		if xc := sc.col(q.X); xc != nil && xc.Type == dataset.Temporal {
			col = q.X
		} else if ts := sc.temporalCols(); len(ts) > 0 {
			col = ts[0]
			notes = append(notes, fmt.Sprintf("year filter bound to %s (guessed)", col))
		}
		if col == "" {
			notes = append(notes, fmt.Sprintf("dropped year filter %s %s (no temporal column)", f.Op, f.Str))
			conf *= 0.6
			continue
		}
		f.Col = col
		q.Filters = append(q.Filters, f)
	}
	for _, f := range p.MeasureFilters {
		if measureCol == "" {
			notes = append(notes, fmt.Sprintf("dropped threshold %s %s (no measure column)", f.Op, f.Str))
			conf *= 0.6
			continue
		}
		f.Col = measureCol
		q.Filters = append(q.Filters, f)
	}
	return conf, notes
}

// recordAmbiguity notes a slot that had more than one option.
func recordAmbiguity(ambs *[]Ambiguity, slot string, opts []slotOption) {
	if len(opts) < 2 {
		return
	}
	names := make([]string, len(opts))
	for i, o := range opts {
		names[i] = o.name
	}
	*ambs = append(*ambs, Ambiguity{Slot: slot, Options: names})
}
