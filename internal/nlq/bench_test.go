package nlq

import "testing"

// BenchmarkNLQParse measures the full parse+enumerate pipeline on a
// representative query with bindings, a filter phrase, and an ambiguity
// fan-out. The benchdiff gate holds this under 100µs/op: parsing must
// stay negligible next to executing even one candidate.
func BenchmarkNLQParse(b *testing.B) {
	sc := evalSchema(b)
	const query = "top 5 regions by total sales excluding east since 2016"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(query, sc, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
