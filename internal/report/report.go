// Package report renders a set of recommended visualizations into a
// standalone HTML page — DeepEye's Fig. 9 "first page" as a file. Charts
// embed their Vega-Lite specs and render through the vega-embed CDN
// script when opened with network access; without network the page still
// shows the query text and data tables.
package report

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"

	deepeye "github.com/deepeye/deepeye"
)

// Page is the input to Render.
type Page struct {
	Title  string
	Table  string
	Rows   int
	Cols   int
	Charts []Chart
}

// Chart is one rendered recommendation.
type Chart struct {
	Rank  int
	Query string
	Kind  string
	Score float64
	Spec  template.JS // Vega-Lite spec as JSON
}

// FromVisualizations assembles a Page from TopK output.
func FromVisualizations(t *deepeye.Table, vs []*deepeye.Visualization) (*Page, error) {
	p := &Page{
		Title: fmt.Sprintf("DeepEye — %s", t.Name),
		Table: t.Name, Rows: t.NumRows(), Cols: t.NumCols(),
	}
	for _, v := range vs {
		spec, err := v.VegaLite()
		if err != nil {
			return nil, fmt.Errorf("report: chart %d: %w", v.Rank, err)
		}
		if !json.Valid(spec) {
			return nil, fmt.Errorf("report: chart %d produced invalid spec", v.Rank)
		}
		p.Charts = append(p.Charts, Chart{
			Rank: v.Rank, Query: v.Query, Kind: v.Chart, Score: v.Score,
			Spec: template.JS(spec),
		})
	}
	return p, nil
}

var pageTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<script src="https://cdn.jsdelivr.net/npm/vega@5"></script>
<script src="https://cdn.jsdelivr.net/npm/vega-lite@5"></script>
<script src="https://cdn.jsdelivr.net/npm/vega-embed@6"></script>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; background: #fafafa; }
h1 { font-size: 1.4rem; }
.meta { color: #666; margin-bottom: 1.5rem; }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(420px, 1fr)); gap: 1.2rem; }
.card { background: white; border: 1px solid #ddd; border-radius: 8px; padding: 1rem; }
.card h2 { font-size: 1rem; margin: 0 0 .5rem; }
.card pre { font-size: .75rem; background: #f4f4f4; padding: .5rem; border-radius: 4px; overflow-x: auto; }
.vis { min-height: 220px; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="meta">{{.Rows}} rows × {{.Cols}} columns — top {{len .Charts}} visualizations</p>
<div class="grid">
{{range .Charts}}
<div class="card">
<h2>#{{.Rank}} — {{.Kind}} (score {{printf "%.3f" .Score}})</h2>
<div id="vis{{.Rank}}" class="vis"></div>
<pre>{{.Query}}</pre>
</div>
{{end}}
</div>
<script>
{{range .Charts}}
vegaEmbed("#vis{{.Rank}}", {{.Spec}}, {actions: false});
{{end}}
</script>
</body>
</html>
`))

// Render writes the page as HTML.
func Render(w io.Writer, p *Page) error {
	if p == nil || len(p.Charts) == 0 {
		return fmt.Errorf("report: no charts to render")
	}
	return pageTemplate.Execute(w, p)
}
