package report

import (
	"bytes"
	"strings"
	"testing"

	deepeye "github.com/deepeye/deepeye"
)

func topCharts(t *testing.T) (*deepeye.Table, []*deepeye.Visualization) {
	t.Helper()
	csv := "region,amount\nNorth,12\nSouth,7\nEast,15\nWest,4\nNorth,18\nEast,6\nSouth,9\nWest,11\n"
	tab, err := deepeye.LoadCSV("sales", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	sys := deepeye.New(deepeye.Options{IncludeOneColumn: true})
	vs, err := sys.TopK(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tab, vs
}

func TestRenderPage(t *testing.T) {
	tab, vs := topCharts(t)
	p, err := FromVisualizations(tab, vs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "vegaEmbed", "#1", "sales", "vega-lite"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered page missing %q", want)
		}
	}
	// One card and one embed call per chart.
	if got := strings.Count(out, `class="card"`); got != len(vs) {
		t.Errorf("cards = %d, want %d", got, len(vs))
	}
	if got := strings.Count(out, "vegaEmbed("); got != len(vs) {
		t.Errorf("embeds = %d, want %d", got, len(vs))
	}
}

func TestRenderEmpty(t *testing.T) {
	if err := Render(&bytes.Buffer{}, &Page{}); err == nil {
		t.Error("empty page should fail")
	}
	if err := Render(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil page should fail")
	}
}

func TestRenderEscapesQueryText(t *testing.T) {
	tab, vs := topCharts(t)
	p, err := FromVisualizations(tab, vs)
	if err != nil {
		t.Fatal(err)
	}
	p.Charts[0].Query = "<script>alert('x')</script>"
	var buf bytes.Buffer
	if err := Render(&buf, p); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("query text not escaped")
	}
}
