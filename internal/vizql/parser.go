package vizql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/transform"
)

// Parse parses the textual form of the visualization language. Keywords
// are case-insensitive; column names are case-sensitive. The grammar
// (paper Fig. 2):
//
//	VISUALIZE (bar|line|pie|scatter)
//	SELECT X ',' ( Y | SUM(Y) | AVG(Y) | CNT(Y) )
//	FROM name
//	[ WHERE pred ( AND pred )* ]
//	[ GROUP BY X
//	| BIN X BY (MINUTE|HOUR|DAY|WEEK|MONTH|QUARTER|YEAR)
//	| BIN X INTO n
//	| BIN X BY UDF(name) ]
//	[ ORDER BY (X|Y|SUM(Y)|AVG(Y)|CNT(Y)) [DESC|ASC] ]
//	[ LIMIT n ]
//
// where pred is `col (=|!=|<|<=|>|>=) value` or `YEAR(col) op n`
// (operators must be whitespace-separated; non-numeric values may be
// double-quoted). UDFs referenced by name are resolved from the udfs
// map; a nil map means no UDFs are available.
func Parse(src string, udfs map[string]*transform.UDF) (Query, error) {
	var q Query
	p := &parser{toks: tokenize(src)}

	if err := p.expectKeyword("VISUALIZE"); err != nil {
		return q, err
	}
	typWord, err := p.next("chart type")
	if err != nil {
		return q, err
	}
	typ, err := chart.ParseType(strings.ToLower(typWord))
	if err != nil {
		return q, err
	}
	q.Viz = typ

	if err := p.expectKeyword("SELECT"); err != nil {
		return q, err
	}
	q.X, err = p.next("x column")
	if err != nil {
		return q, err
	}
	if err := p.expectKeyword(","); err != nil {
		return q, err
	}
	yAgg, yCol, err := p.selectItem()
	if err != nil {
		return q, err
	}
	q.Y = yCol
	q.Spec.Agg = yAgg

	if err := p.expectKeyword("FROM"); err != nil {
		return q, err
	}
	q.From, err = p.next("table name")
	if err != nil {
		return q, err
	}

	// Optional WHERE clause: AND-chained predicates.
	if p.peekKeyword("WHERE") {
		p.pos++
		for {
			f, err := p.filterPred()
			if err != nil {
				return q, err
			}
			q.Filters = append(q.Filters, f)
			if !p.peekKeyword("AND") {
				break
			}
			p.pos++
		}
	}

	// Optional TRANSFORM clause.
	switch {
	case p.peekKeyword("GROUP"):
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return q, err
		}
		col, err := p.next("group column")
		if err != nil {
			return q, err
		}
		if col != q.X {
			return q, fmt.Errorf("vizql: GROUP BY %s does not match selected x column %s", col, q.X)
		}
		q.Spec.Kind = transform.KindGroup
	case p.peekKeyword("BIN"):
		p.pos++
		col, err := p.next("bin column")
		if err != nil {
			return q, err
		}
		if col != q.X {
			return q, fmt.Errorf("vizql: BIN %s does not match selected x column %s", col, q.X)
		}
		switch {
		case p.peekKeyword("BY"):
			p.pos++
			word, err := p.next("bin unit or UDF")
			if err != nil {
				return q, err
			}
			if u, ok := parseUnit(word); ok {
				q.Spec.Kind = transform.KindBinUnit
				q.Spec.Unit = u
			} else if name, ok := parseCall("UDF", word); ok {
				udf := udfs[name]
				if udf == nil {
					return q, fmt.Errorf("vizql: unknown UDF %q", name)
				}
				q.Spec.Kind = transform.KindBinUDF
				q.Spec.UDF = udf
			} else {
				return q, fmt.Errorf("vizql: bad BIN BY argument %q", word)
			}
		case p.peekKeyword("INTO"):
			p.pos++
			nWord, err := p.next("bin count")
			if err != nil {
				return q, err
			}
			n, err := strconv.Atoi(nWord)
			if err != nil || n <= 0 {
				return q, fmt.Errorf("vizql: bad bin count %q", nWord)
			}
			q.Spec.Kind = transform.KindBinCount
			q.Spec.N = n
		default:
			return q, fmt.Errorf("vizql: BIN requires BY or INTO")
		}
	}
	// A transform without an aggregate defaults to CNT; an aggregate
	// without a transform is invalid (the paper's Y′ aggregates data that
	// falls into the same bin or group).
	if q.Spec.Kind == transform.KindNone && q.Spec.Agg != transform.AggNone {
		return q, fmt.Errorf("vizql: %s(%s) requires a GROUP BY or BIN clause", q.Spec.Agg, q.Y)
	}
	if q.Spec.Kind != transform.KindNone && q.Spec.Agg == transform.AggNone {
		q.Spec.Agg = transform.AggCnt
	}

	// Optional ORDER BY clause.
	if p.peekKeyword("ORDER") {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return q, err
		}
		agg, col, err := p.selectItem()
		if err != nil {
			return q, err
		}
		switch {
		case agg != transform.AggNone && col == q.Y:
			// An aggregate wrapper always refers to Y′ — this matters for
			// one-column queries where X == Y.
			q.Order = transform.SortY
		case col == q.X:
			q.Order = transform.SortX
		case col == q.Y:
			q.Order = transform.SortY
		default:
			return q, fmt.Errorf("vizql: ORDER BY %s is neither the x nor y column", col)
		}
		switch {
		case p.peekKeyword("DESC"):
			p.pos++
			q.Desc = true
		case p.peekKeyword("ASC"):
			p.pos++
		}
	}
	// Optional LIMIT clause.
	if p.peekKeyword("LIMIT") {
		p.pos++
		nWord, err := p.next("limit count")
		if err != nil {
			return q, err
		}
		n, err := strconv.Atoi(nWord)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("vizql: bad limit %q", nWord)
		}
		q.Limit = n
	}
	if p.pos != len(p.toks) {
		return q, fmt.Errorf("vizql: trailing input starting at %q", p.toks[p.pos])
	}
	return q, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) next(what string) (string, error) {
	if p.pos >= len(p.toks) {
		return "", fmt.Errorf("vizql: unexpected end of query, want %s", what)
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t, err := p.next(kw)
	if err != nil {
		return err
	}
	if !strings.EqualFold(t, kw) {
		return fmt.Errorf("vizql: want %s, got %q", kw, t)
	}
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	return p.pos < len(p.toks) && strings.EqualFold(p.toks[p.pos], kw)
}

// selectItem parses either a bare column or AGG(col).
func (p *parser) selectItem() (transform.Agg, string, error) {
	t, err := p.next("column")
	if err != nil {
		return transform.AggNone, "", err
	}
	for _, agg := range []struct {
		kw string
		a  transform.Agg
	}{{"SUM", transform.AggSum}, {"AVG", transform.AggAvg}, {"CNT", transform.AggCnt}, {"COUNT", transform.AggCnt}} {
		if name, ok := parseCall(agg.kw, t); ok {
			return agg.a, name, nil
		}
	}
	return transform.AggNone, t, nil
}

// filterPred parses one WHERE predicate: `col op value` or
// `YEAR(col) op n`.
func (p *parser) filterPred() (Filter, error) {
	var f Filter
	colTok, err := p.next("filter column")
	if err != nil {
		return f, err
	}
	if name, ok := parseCall("YEAR", colTok); ok {
		f.Year = true
		f.Col = name
	} else {
		f.Col = colTok
	}
	opTok, err := p.next("comparison operator")
	if err != nil {
		return f, err
	}
	op, ok := parseFilterOp(opTok)
	if !ok {
		return f, fmt.Errorf("vizql: bad comparison operator %q", opTok)
	}
	f.Op = op
	val, err := p.next("filter value")
	if err != nil {
		return f, err
	}
	f.Str = val
	if f.Year {
		n, err := strconv.Atoi(val)
		if err != nil {
			return f, fmt.Errorf("vizql: bad year literal %q", val)
		}
		f.Str = strconv.Itoa(n)
		f.Num = float64(n)
	} else if v, err := strconv.ParseFloat(val, 64); err == nil {
		f.Num = v
	}
	return f, nil
}

// parseCall matches KW(arg) case-insensitively on KW and returns arg.
func parseCall(kw, tok string) (string, bool) {
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return "", false
	}
	if !strings.EqualFold(tok[:open], kw) {
		return "", false
	}
	return tok[open+1 : len(tok)-1], true
}

func parseUnit(word string) (transform.BinUnit, bool) {
	switch strings.ToUpper(word) {
	case "MINUTE":
		return transform.ByMinute, true
	case "HOUR":
		return transform.ByHour, true
	case "DAY":
		return transform.ByDay, true
	case "WEEK":
		return transform.ByWeek, true
	case "MONTH":
		return transform.ByMonth, true
	case "QUARTER":
		return transform.ByQuarter, true
	case "YEAR":
		return transform.ByYear, true
	case "HOUR_OF_DAY":
		return transform.ByHourOfDay, true
	case "DAY_OF_WEEK":
		return transform.ByDayOfWeek, true
	case "MONTH_OF_YEAR":
		return transform.ByMonthOfYear, true
	default:
		return 0, false
	}
}

// tokenize splits on whitespace, treating "," as its own token but keeping
// parenthesized calls like AVG(delay) together. Column names with spaces
// can be quoted with double quotes.
func tokenize(src string) []string {
	var toks []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range src {
		switch {
		case r == '"':
			inQuote = !inQuote
		case inQuote:
			cur.WriteRune(r)
		case r == ',':
			flush()
			toks = append(toks, ",")
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}
