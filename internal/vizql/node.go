package vizql

import (
	"context"
	"fmt"
	"math"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/feature"
	"github.com/deepeye/deepeye/internal/stats"
	"github.com/deepeye/deepeye/internal/transform"
)

// Node is a visualization node (paper Def. 1): the original data (X, Y),
// the transformed data (X′, Y′), the feature vector F, and the chart type
// T — everything recognition, ranking, and selection operate on.
type Node struct {
	Query Query
	Chart chart.Type

	// Original column metadata.
	XName, YName string
	XType, YType dataset.ColType
	InputRows    int // |X| of the original data

	// Transformed data (X′, Y′).
	Res *transform.Result
	// XOutType is the effective type of the X′ axis after transformation:
	// grouping keeps the input type, calendar binning keeps Temporal,
	// numeric binning keeps Numerical.
	XOutType dataset.ColType

	// Derived statistics.
	Corr      float64 // c(X′, Y′): max over the four correlation families
	TrendR2   float64 // best R² of the four trend fits of Y′ against X′
	TrendKind stats.TrendKind
	Features  feature.Vector

	// distinctX caches d(X′); 0 means "not yet computed" (a non-empty
	// result always has at least one distinct label). The batch executor
	// fills it at construction so the ranking workers never write it.
	distinctX int
}

// DistinctX returns d(X′).
func (n *Node) DistinctX() int {
	if n.distinctX == 0 {
		n.distinctX = distinctLabels(n.Res.XLabels)
	}
	return n.distinctX
}

// MinY returns min(Y′), or 0 for empty results.
func (n *Node) MinY() float64 {
	if len(n.Res.Y) == 0 {
		return 0
	}
	m := n.Res.Y[0]
	for _, v := range n.Res.Y[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Data materializes the node as a renderable chart.
func (n *Node) Data() *chart.Data {
	d := &chart.Data{
		Type:    n.Chart,
		Title:   fmt.Sprintf("%s vs %s", yTitle(n), n.XName),
		XName:   n.XName,
		YName:   yTitle(n),
		XLabels: n.Res.XLabels,
		Y:       n.Res.Y,
	}
	if n.XOutType != dataset.Categorical {
		ordered := true
		for _, o := range n.Res.XOrder {
			if math.IsNaN(o) {
				ordered = false
				break
			}
		}
		if ordered {
			d.XNums = n.Res.XOrder
		}
	}
	return d
}

func yTitle(n *Node) string {
	if n.Query.Spec.Agg == transform.AggNone {
		return n.YName
	}
	return fmt.Sprintf("%s(%s)", n.Query.Spec.Agg, n.YName)
}

// Execute runs a query over a table and materializes the visualization
// node. It validates column references and transform/type compatibility
// but deliberately does not judge chart quality — that is the job of the
// recognizer, the rules, and the ranking factors.
func Execute(t *dataset.Table, q Query) (*Node, error) {
	return ExecuteCtx(context.Background(), t, q)
}

// ExecuteCtx is Execute with cancellation. A query runs in three phases
// — the transform pass, the sort, and the derived statistics — each at
// most one sweep over the data; ctx is re-checked between phases so the
// longest uninterruptible stretch is a single sweep even on wide,
// high-cardinality tables.
func ExecuteCtx(ctx context.Context, t *dataset.Table, q Query) (*Node, error) {
	x := t.Column(q.X)
	if x == nil {
		return nil, fmt.Errorf("vizql: unknown column %q", q.X)
	}
	y := t.Column(q.Y)
	if y == nil {
		return nil, fmt.Errorf("vizql: unknown column %q", q.Y)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// WHERE predicates restrict the row set before the transform; the
	// original table columns are never mutated. SourceRows of a filtered
	// result index into the filtered row order.
	x, y, err := applyQueryFilters(t, q, x, y)
	if err != nil {
		return nil, err
	}
	res, err := transform.Apply(x, y, q.Spec)
	if err != nil {
		return nil, err
	}
	if res.Len() == 0 {
		return nil, fmt.Errorf("vizql: query produced no data")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	transform.OrderBy(res, q.Order)
	applyDescLimit(res, q)

	n := &Node{
		Query:     q,
		Chart:     q.Viz,
		XName:     q.X,
		YName:     q.Y,
		XType:     x.Type,
		YType:     y.Type,
		InputRows: res.InputRows,
		Res:       res,
		XOutType:  outType(x.Type, q.Spec.Kind),
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fillDerived(n)
	return n, nil
}

// applyDescLimit reverses the sorted bucket order (ORDER BY … DESC) and
// truncates to the LIMIT. Both operate on the result's own slices —
// ExecuteCtx materializes a fresh Result per call, so no sharing is at
// risk — and DESC without an ORDER BY axis is a no-op by construction
// (the grammar only admits DESC after ORDER BY).
func applyDescLimit(res *transform.Result, q Query) {
	if q.Desc && q.Order != transform.SortNone {
		for i, j := 0, res.Len()-1; i < j; i, j = i+1, j-1 {
			res.XLabels[i], res.XLabels[j] = res.XLabels[j], res.XLabels[i]
			res.XOrder[i], res.XOrder[j] = res.XOrder[j], res.XOrder[i]
			res.Y[i], res.Y[j] = res.Y[j], res.Y[i]
			if res.SourceRows != nil {
				res.SourceRows[i], res.SourceRows[j] = res.SourceRows[j], res.SourceRows[i]
			}
		}
	}
	if q.Limit > 0 && res.Len() > q.Limit {
		res.XLabels = res.XLabels[:q.Limit]
		res.XOrder = res.XOrder[:q.Limit]
		res.Y = res.Y[:q.Limit]
		if res.SourceRows != nil {
			res.SourceRows = res.SourceRows[:q.Limit]
		}
	}
}

// outType gives the effective type of X′ given the input type and the
// transform kind.
func outType(in dataset.ColType, kind transform.Kind) dataset.ColType {
	switch kind {
	case transform.KindBinUnit:
		return dataset.Temporal
	case transform.KindBinCount, transform.KindBinUDF:
		return dataset.Numerical
	default:
		return in
	}
}

// FillDerived computes correlation, trend, and the feature vector from
// the transformed series of a node assembled outside the executor (the
// progressive selector builds nodes from shared bucketing passes).
func FillDerived(n *Node) { fillDerived(n) }

// fillDerived computes correlation, trend, and the feature vector from the
// transformed series.
func fillDerived(n *Node) {
	xs := n.Res.XOrder
	ys := n.Res.Y
	if n.XOutType != dataset.Categorical {
		// Drop NaN order keys defensively.
		cx := make([]float64, 0, len(xs))
		cy := make([]float64, 0, len(ys))
		for i := range xs {
			if !math.IsNaN(xs[i]) {
				cx = append(cx, xs[i])
				cy = append(cy, ys[i])
			}
		}
		n.Corr, n.TrendKind, n.TrendR2 = feature.CorrelationTrend(cx, cy)
	} else {
		n.Corr = 0
		n.TrendKind, n.TrendR2 = stats.TrendSeries(ys)
	}
	fillFeatures(n)
}

// fillFeatures assembles the feature vector given already-computed Corr;
// it is the cheap part of fillDerived, reused by the batch executor when
// correlation and trend come from a cache.
func fillFeatures(n *Node) {
	var xi feature.ColumnInfo
	if n.XOutType != dataset.Categorical {
		xi = feature.FromSeries(nonNaN(n.Res.XOrder), n.XOutType)
	} else {
		xi = feature.FromLabels(n.Res.XLabels)
	}
	// |X′| must reflect the transformed cardinality even when some order
	// keys are NaN.
	xi.N = n.Res.Len()
	xi.Distinct = n.DistinctX()
	yi := feature.FromSeries(n.Res.Y, dataset.Numerical)
	n.Features = feature.Extract(xi, yi, n.Corr, n.Chart)
}

func nonNaN(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}
