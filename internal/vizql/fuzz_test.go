package vizql

import (
	"testing"

	"github.com/deepeye/deepeye/internal/transform"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// anything it accepts round-trips through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"VISUALIZE line SELECT a, AVG(b) FROM t BIN a BY HOUR ORDER BY a",
		"VISUALIZE pie SELECT c, SUM(v) FROM t GROUP BY c",
		"VISUALIZE bar SELECT x, CNT(x) FROM t BIN x INTO 10",
		"VISUALIZE scatter SELECT a, b FROM t",
		`VISUALIZE bar SELECT "a b", CNT("a b") FROM t GROUP BY "a b"`,
		"VISUALIZE pie SELECT d, CNT(d) FROM t BIN d BY UDF(sign)",
		"visualize LINE select a , avg(b) from t bin a by month",
		"",
		"VISUALIZE",
		"VISUALIZE bar SELECT , FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	udfs := map[string]*transform.UDF{"sign": DefaultUDF}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, udfs)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered, udfs)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if q.Key() != q2.Key() {
			t.Fatalf("round trip changed query: %q -> %q", q.Key(), q2.Key())
		}
	})
}

// FuzzParseMulti checks the multi-column parser the same way.
func FuzzParseMulti(f *testing.F) {
	seeds := []string{
		"VISUALIZE line SELECT x, AVG(a), AVG(b) FROM t GROUP BY x",
		"VISUALIZE bar SELECT x, SUM(z) FROM t BIN x INTO 10 SERIES BY c",
		"VISUALIZE line SELECT when, AVG(a), SUM(b) FROM t BIN when BY MONTH",
		"VISUALIZE bar SELECT x FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseMulti(src, nil)
		if err != nil {
			return
		}
		rendered := q.String()
		if _, err := ParseMulti(rendered, nil); err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
	})
}
