package vizql

import (
	"fmt"
	"strings"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/transform"
)

// MultiQuery is the multi-column extension of the language (paper §II-B):
//
//   - Multi-Y (case i): one X on the x-axis and z ≥ 2 aggregated Y
//     columns compared as series —
//     VISUALIZE line SELECT X, AVG(Y1), AVG(Y2) FROM t BIN X BY MONTH
//   - XYZ (case ii): group the rows by a series column, bucket Y inside
//     each group, aggregate Z —
//     VISUALIZE bar SELECT Y, SUM(Z) FROM t BIN Y BY MONTH SERIES BY X
//
// The SERIES BY clause is this implementation's concrete spelling of the
// paper's "group the data by X" for case (ii).
type MultiQuery struct {
	Viz    chart.Type
	X      string // x-axis column
	Ys     []string
	Aggs   []transform.Agg // per-Y aggregate (multi-Y); Aggs[0] for XYZ
	Series string          // series column (case ii); empty for multi-Y
	From   string
	Spec   transform.Spec // bucketing of X (Agg field unused)
}

// String renders the query in language form.
func (q MultiQuery) String() string {
	var sb strings.Builder
	x := quoteIdent(q.X)
	fmt.Fprintf(&sb, "VISUALIZE %s\nSELECT %s", q.Viz, x)
	for i, y := range q.Ys {
		agg := transform.AggSum
		if i < len(q.Aggs) {
			agg = q.Aggs[i]
		}
		fmt.Fprintf(&sb, ", %s(%s)", agg, quoteIdent(y))
	}
	from := q.From
	if from == "" {
		from = "?"
	}
	fmt.Fprintf(&sb, "\nFROM %s", quoteIdent(from))
	switch q.Spec.Kind {
	case transform.KindGroup:
		fmt.Fprintf(&sb, "\nGROUP BY %s", x)
	case transform.KindBinUnit:
		fmt.Fprintf(&sb, "\nBIN %s BY %s", x, q.Spec.Unit)
	case transform.KindBinCount:
		fmt.Fprintf(&sb, "\nBIN %s INTO %d", x, q.Spec.N)
	}
	if q.Series != "" {
		fmt.Fprintf(&sb, "\nSERIES BY %s", quoteIdent(q.Series))
	}
	return sb.String()
}

// MultiNode is the materialized multi-series visualization.
type MultiNode struct {
	Query MultiQuery
	Chart chart.Type
	Res   *transform.MultiResult
	// XOutType is the effective x-axis type after bucketing.
	XOutType dataset.ColType
}

// Data materializes the node as a renderable multi-series chart.
func (n *MultiNode) Data() *chart.MultiData {
	d := &chart.MultiData{
		Type:    n.Chart,
		Title:   fmt.Sprintf("%s by %s", strings.Join(n.Res.SeriesNames, ", "), n.Query.X),
		XName:   n.Query.X,
		YName:   strings.Join(n.Query.Ys, ", "),
		XLabels: n.Res.XLabels,
	}
	if n.XOutType != dataset.Categorical {
		allOrdered := true
		for _, o := range n.Res.XOrder {
			if o != o { // NaN
				allOrdered = false
				break
			}
		}
		if allOrdered {
			d.XNums = n.Res.XOrder
		}
	}
	for si, name := range n.Res.SeriesNames {
		d.Series = append(d.Series, chart.Series{Name: name, Y: n.Res.Series[si]})
	}
	return d
}

// ExecuteMulti runs a multi-column query over a table.
func ExecuteMulti(t *dataset.Table, q MultiQuery) (*MultiNode, error) {
	if q.Viz == chart.Pie {
		return nil, fmt.Errorf("vizql: pie charts cannot be multi-series")
	}
	x := t.Column(q.X)
	if x == nil {
		return nil, fmt.Errorf("vizql: unknown column %q", q.X)
	}
	var res *transform.MultiResult
	var err error
	if q.Series != "" {
		// Case (ii): X bucketed, series column groups, single Z.
		if len(q.Ys) != 1 {
			return nil, fmt.Errorf("vizql: SERIES BY requires exactly one aggregated column, got %d", len(q.Ys))
		}
		sCol := t.Column(q.Series)
		if sCol == nil {
			return nil, fmt.Errorf("vizql: unknown series column %q", q.Series)
		}
		z := t.Column(q.Ys[0])
		if z == nil {
			return nil, fmt.Errorf("vizql: unknown column %q", q.Ys[0])
		}
		spec := q.Spec
		if len(q.Aggs) > 0 {
			spec.Agg = q.Aggs[0]
		}
		res, err = transform.ApplyXYZ(sCol, x, z, spec, 0)
	} else {
		// Case (i): multi-Y comparison.
		ys := make([]*dataset.Column, len(q.Ys))
		for i, name := range q.Ys {
			ys[i] = t.Column(name)
			if ys[i] == nil {
				return nil, fmt.Errorf("vizql: unknown column %q", name)
			}
		}
		res, err = transform.ApplyMultiY(x, ys, q.Spec, q.Aggs)
	}
	if err != nil {
		return nil, err
	}
	n := &MultiNode{
		Query:    q,
		Chart:    q.Viz,
		Res:      res,
		XOutType: outType(x.Type, q.Spec.Kind),
	}
	if err := n.Data().Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// ParseMulti parses the multi-column form of the language. It accepts the
// same clauses as Parse plus multiple aggregated SELECT items and the
// optional SERIES BY clause; ORDER BY is not supported for multi-series
// charts (the x-axis order is canonical).
func ParseMulti(src string, udfs map[string]*transform.UDF) (MultiQuery, error) {
	var q MultiQuery
	p := &parser{toks: tokenize(src)}

	if err := p.expectKeyword("VISUALIZE"); err != nil {
		return q, err
	}
	typWord, err := p.next("chart type")
	if err != nil {
		return q, err
	}
	typ, err := chart.ParseType(strings.ToLower(typWord))
	if err != nil {
		return q, err
	}
	q.Viz = typ

	if err := p.expectKeyword("SELECT"); err != nil {
		return q, err
	}
	q.X, err = p.next("x column")
	if err != nil {
		return q, err
	}
	for p.peekKeyword(",") {
		p.pos++
		agg, col, err := p.selectItem()
		if err != nil {
			return q, err
		}
		if agg == transform.AggNone {
			return q, fmt.Errorf("vizql: multi-column SELECT items must be aggregated, got bare %q", col)
		}
		q.Ys = append(q.Ys, col)
		q.Aggs = append(q.Aggs, agg)
	}
	if len(q.Ys) == 0 {
		return q, fmt.Errorf("vizql: multi-column query needs at least one aggregated column")
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return q, err
	}
	q.From, err = p.next("table name")
	if err != nil {
		return q, err
	}

	switch {
	case p.peekKeyword("GROUP"):
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return q, err
		}
		col, err := p.next("group column")
		if err != nil {
			return q, err
		}
		if col != q.X {
			return q, fmt.Errorf("vizql: GROUP BY %s does not match x column %s", col, q.X)
		}
		q.Spec.Kind = transform.KindGroup
	case p.peekKeyword("BIN"):
		p.pos++
		col, err := p.next("bin column")
		if err != nil {
			return q, err
		}
		if col != q.X {
			return q, fmt.Errorf("vizql: BIN %s does not match x column %s", col, q.X)
		}
		switch {
		case p.peekKeyword("BY"):
			p.pos++
			word, err := p.next("bin unit or UDF")
			if err != nil {
				return q, err
			}
			if u, ok := parseUnit(word); ok {
				q.Spec.Kind = transform.KindBinUnit
				q.Spec.Unit = u
			} else if name, ok := parseCall("UDF", word); ok {
				udf := udfs[name]
				if udf == nil {
					return q, fmt.Errorf("vizql: unknown UDF %q", name)
				}
				q.Spec.Kind = transform.KindBinUDF
				q.Spec.UDF = udf
			} else {
				return q, fmt.Errorf("vizql: bad BIN BY argument %q", word)
			}
		case p.peekKeyword("INTO"):
			p.pos++
			nWord, err := p.next("bin count")
			if err != nil {
				return q, err
			}
			n := 0
			if _, err := fmt.Sscanf(nWord, "%d", &n); err != nil || n <= 0 {
				return q, fmt.Errorf("vizql: bad bin count %q", nWord)
			}
			q.Spec.Kind = transform.KindBinCount
			q.Spec.N = n
		default:
			return q, fmt.Errorf("vizql: BIN requires BY or INTO")
		}
	}

	if p.peekKeyword("SERIES") {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return q, err
		}
		q.Series, err = p.next("series column")
		if err != nil {
			return q, err
		}
	}
	if p.pos != len(p.toks) {
		return q, fmt.Errorf("vizql: trailing input starting at %q", p.toks[p.pos])
	}
	if q.Series == "" && len(q.Ys) < 2 {
		return q, fmt.Errorf("vizql: multi-Y query needs >= 2 aggregated columns (or a SERIES BY clause)")
	}
	return q, nil
}

// EnumerateMultiYQueries generates multi-Y candidates: for each bucketable
// X, every pair of numerical Y columns compared with the same aggregate
// (AVG and SUM), on line and bar charts. Larger Y subsets explode
// combinatorially (the paper's Σ 4^z·C(m,z) term); pairs cover the
// practically useful cases.
func EnumerateMultiYQueries(t *dataset.Table) []MultiQuery {
	var numeric []string
	for _, c := range t.Columns {
		if c.Type == dataset.Numerical {
			numeric = append(numeric, c.Name)
		}
	}
	var out []MultiQuery
	for _, x := range t.Columns {
		var specs []transform.Spec
		switch x.Type {
		case dataset.Categorical:
			specs = []transform.Spec{{Kind: transform.KindGroup}}
		case dataset.Temporal:
			specs = []transform.Spec{
				{Kind: transform.KindBinUnit, Unit: transform.ByMonth},
				{Kind: transform.KindBinUnit, Unit: transform.ByWeek},
			}
		case dataset.Numerical:
			specs = []transform.Spec{{Kind: transform.KindBinCount, N: transform.DefaultBinCount}}
		}
		for _, spec := range specs {
			for i := 0; i < len(numeric); i++ {
				for j := i + 1; j < len(numeric); j++ {
					if numeric[i] == x.Name || numeric[j] == x.Name {
						continue
					}
					for _, agg := range []transform.Agg{transform.AggAvg, transform.AggSum} {
						for _, typ := range []chart.Type{chart.Line, chart.Bar} {
							out = append(out, MultiQuery{
								Viz: typ, X: x.Name,
								Ys:   []string{numeric[i], numeric[j]},
								Aggs: []transform.Agg{agg, agg},
								From: t.Name, Spec: spec,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// EnumerateXYZQueries generates case-(ii) candidates: every categorical
// series column × every bucketable Y axis × every numerical Z, with SUM
// and AVG, on stacked bars and multi-line charts.
func EnumerateXYZQueries(t *dataset.Table) []MultiQuery {
	var out []MultiQuery
	for _, series := range t.Columns {
		if series.Type != dataset.Categorical {
			continue
		}
		for _, axis := range t.Columns {
			if axis.Name == series.Name {
				continue
			}
			var specs []transform.Spec
			switch axis.Type {
			case dataset.Temporal:
				specs = []transform.Spec{{Kind: transform.KindBinUnit, Unit: transform.ByMonth}}
			case dataset.Numerical:
				specs = []transform.Spec{{Kind: transform.KindBinCount, N: transform.DefaultBinCount}}
			case dataset.Categorical:
				specs = []transform.Spec{{Kind: transform.KindGroup}}
			}
			for _, z := range t.Columns {
				if z.Type != dataset.Numerical || z.Name == series.Name || z.Name == axis.Name {
					continue
				}
				for _, agg := range []transform.Agg{transform.AggSum, transform.AggAvg} {
					for _, typ := range []chart.Type{chart.Bar, chart.Line} {
						out = append(out, MultiQuery{
							Viz: typ, X: axis.Name,
							Ys:     []string{z.Name},
							Aggs:   []transform.Agg{agg},
							Series: series.Name,
							From:   t.Name, Spec: specs[0],
						})
					}
				}
			}
		}
	}
	return out
}
