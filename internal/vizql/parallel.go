package vizql

import (
	"runtime"
	"sync"

	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/transform"
)

// ExecuteAllParallel materializes a query batch across a worker pool —
// the paper notes that visualization generation/selection "is trivially
// parallelizable" (§VI-D). Queries are grouped by their transform
// signature so each worker executes one shared transform group (the same
// sharing ExecuteAll exploits sequentially), and the result order is the
// stable query order of the input. workers ≤ 0 uses GOMAXPROCS.
func ExecuteAllParallel(t *dataset.Table, queries []Query, workers int) []*Node {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(queries) < 64 {
		return ExecuteAll(t, queries)
	}
	type groupKey struct {
		x, y, spec string
		sort       transform.SortAxis
	}
	// Group queries so one worker owns one shared transform.
	order := make([]groupKey, 0)
	groups := make(map[groupKey][]Query)
	for _, q := range queries {
		key := groupKey{q.X, q.Y, q.Spec.String(), q.Order}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], q)
	}
	results := make([][]*Node, len(order))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for gi, key := range order {
		wg.Add(1)
		go func(gi int, qs []Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[gi] = ExecuteAll(t, qs)
		}(gi, groups[key])
	}
	wg.Wait()
	var out []*Node
	for _, nodes := range results {
		out = append(out, nodes...)
	}
	return out
}
