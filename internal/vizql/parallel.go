package vizql

import (
	"context"
	"runtime"
	"sync"

	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/transform"
)

// ExecuteAllParallel materializes a query batch across a worker pool —
// the paper notes that visualization generation/selection "is trivially
// parallelizable" (§VI-D). Queries are grouped by their transform
// signature so each worker executes one shared transform group (the same
// sharing ExecuteAll exploits sequentially), and the result order is the
// stable query order of the input. workers ≤ 0 uses GOMAXPROCS.
func ExecuteAllParallel(t *dataset.Table, queries []Query, workers int) []*Node {
	out, _ := ExecuteAllParallelCtx(context.Background(), t, queries, workers)
	return out
}

// ExecuteAllParallelCtx is ExecuteAllParallel with cancellation: a fixed
// pool of workers drains a job channel, every worker re-checks ctx
// before each group, and the feeder stops handing out work the moment
// ctx is done — so cancellation both returns promptly and leaves no
// goroutine behind (the pool is joined before returning).
func ExecuteAllParallelCtx(ctx context.Context, t *dataset.Table, queries []Query, workers int) ([]*Node, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(queries) < 64 {
		return ExecuteAllCtx(ctx, t, queries)
	}
	type groupKey struct {
		x, y, spec string
		sort       transform.SortAxis
	}
	// Group queries so one worker owns one shared transform.
	order := make([]groupKey, 0)
	groups := make(map[groupKey][]Query)
	for _, q := range queries {
		key := groupKey{q.X, q.Y, q.Spec.String(), q.Order}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], q)
	}
	results := make([][]*Node, len(order))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range jobs {
				nodes, err := ExecuteAllCtx(ctx, t, groups[order[gi]])
				if err != nil {
					return // cancelled; the feeder stops on ctx.Done
				}
				results[gi] = nodes
			}
		}()
	}
feed:
	for gi := range order {
		select {
		case jobs <- gi:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []*Node
	for _, nodes := range results {
		out = append(out, nodes...)
	}
	return out, nil
}
