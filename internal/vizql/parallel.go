package vizql

import (
	"context"
	"runtime"

	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/pool"
	"github.com/deepeye/deepeye/internal/transform"
)

// ExecuteAllParallel materializes a query batch across a worker pool —
// the paper notes that visualization generation/selection "is trivially
// parallelizable" (§VI-D). Queries are grouped by their transform
// signature so each worker executes one shared transform group (the same
// sharing ExecuteAll exploits sequentially), and the result order is the
// stable query order of the input. workers ≤ 0 uses GOMAXPROCS.
func ExecuteAllParallel(t *dataset.Table, queries []Query, workers int) []*Node {
	out, _ := ExecuteAllParallelCtx(context.Background(), t, queries, workers)
	return out
}

// ExecuteAllParallelCtx is ExecuteAllParallel with cancellation, fanned
// out through the shared bounded pool (ctx-cancellable, panic-safe,
// reported under deepeye_pool_* metrics). Each task owns one transform
// group and writes only its group's result slot; groups are concatenated
// in first-appearance order afterwards, so the output order matches the
// serial ExecuteAllCtx for any worker count.
func ExecuteAllParallelCtx(ctx context.Context, t *dataset.Table, queries []Query, workers int) ([]*Node, error) {
	// This package's documented contract predates the pool: workers ≤ 0
	// means GOMAXPROCS (pool.Normalize treats 0 as serial), so resolve
	// before handing off.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(queries) < 64 {
		return ExecuteAllCtx(ctx, t, queries)
	}
	type groupKey struct {
		x, y, spec string
		sort       transform.SortAxis
	}
	// Group queries so one worker owns one shared transform.
	order := make([]groupKey, 0)
	groups := make(map[groupKey][]Query)
	for _, q := range queries {
		key := groupKey{q.X, q.Y, q.Spec.String(), q.Order}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], q)
	}
	results := make([][]*Node, len(order))
	err := pool.ForEachBlock(ctx, "vizql_execute", workers, len(order), 1, func(lo, hi int) error {
		for gi := lo; gi < hi; gi++ {
			nodes, err := ExecuteAllCtx(ctx, t, groups[order[gi]])
			if err != nil {
				return err
			}
			results[gi] = nodes
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Node
	for _, nodes := range results {
		out = append(out, nodes...)
	}
	return out, nil
}
