// WHERE predicates for the visualization language. Filters are an
// additive extension used by the NL front-end ("excluding 2019",
// "above 500"): a query with no filters renders, keys, and executes
// exactly as before, and the batch executor routes filtered queries
// around its shared transform caches (a filter changes the row set, so
// nothing about the materialization can be shared).
package vizql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/deepeye/deepeye/internal/dataset"
)

// FilterOp is a comparison operator in a WHERE predicate.
type FilterOp int

const (
	FilterEq FilterOp = iota
	FilterNe
	FilterLt
	FilterLe
	FilterGt
	FilterGe
)

// String returns the operator's canonical spelling.
func (o FilterOp) String() string {
	switch o {
	case FilterEq:
		return "="
	case FilterNe:
		return "!="
	case FilterLt:
		return "<"
	case FilterLe:
		return "<="
	case FilterGt:
		return ">"
	case FilterGe:
		return ">="
	default:
		return fmt.Sprintf("FilterOp(%d)", int(o))
	}
}

// parseFilterOp accepts the canonical spellings plus the common SQL
// aliases == and <>.
func parseFilterOp(tok string) (FilterOp, bool) {
	switch tok {
	case "=", "==":
		return FilterEq, true
	case "!=", "<>":
		return FilterNe, true
	case "<":
		return FilterLt, true
	case "<=":
		return FilterLe, true
	case ">":
		return FilterGt, true
	case ">=":
		return FilterGe, true
	default:
		return 0, false
	}
}

// Filter is one WHERE predicate; a query's predicates combine with AND.
// Str always holds the comparand as written; Num is its parsed value
// when it is numeric (including the Year form, where Str is the year
// literal). Null cells never match any predicate (SQL three-valued
// logic collapsed to false).
type Filter struct {
	Col  string
	Op   FilterOp
	Str  string
	Num  float64
	Year bool // compare the UTC calendar year of a temporal column
}

// numeric reports whether the comparand is a number (bare rendering).
func (f Filter) numeric() bool {
	_, err := strconv.ParseFloat(f.Str, 64)
	return err == nil
}

// String renders the predicate in the WHERE-clause form Parse accepts.
func (f Filter) String() string {
	col := quoteIdent(f.Col)
	if f.Year {
		return fmt.Sprintf("YEAR(%s) %s %s", col, f.Op, f.Str)
	}
	val := f.Str
	if !f.numeric() {
		val = `"` + strings.ReplaceAll(val, `"`, "") + `"`
	}
	return fmt.Sprintf("%s %s %s", col, f.Op, val)
}

// cmpMatch applies the operator to a three-way comparison result
// (c < 0, == 0, > 0); valid distinguishes incomparable pairs (NaN).
func (o FilterOp) cmpMatch(c int, valid bool) bool {
	if !valid {
		return false
	}
	switch o {
	case FilterEq:
		return c == 0
	case FilterNe:
		return c != 0
	case FilterLt:
		return c < 0
	case FilterLe:
		return c <= 0
	case FilterGt:
		return c > 0
	case FilterGe:
		return c >= 0
	default:
		return false
	}
}

// filterEval is a compiled predicate: row index → keep.
type filterEval func(i int) bool

// compileFilter validates one predicate against the table and returns
// its row evaluator. Numeric columns need a numeric comparand; the Year
// form needs a temporal column; categorical and temporal columns
// otherwise compare the raw cell text (numerically when both sides
// parse, so "top_10" < "top_9" pitfalls don't apply to numeric labels).
func compileFilter(t *dataset.Table, f Filter) (filterEval, error) {
	c := t.Column(f.Col)
	if c == nil {
		return nil, fmt.Errorf("vizql: unknown filter column %q", f.Col)
	}
	num, numErr := strconv.ParseFloat(f.Str, 64)
	numOK := numErr == nil
	if f.Year {
		if c.Type != dataset.Temporal {
			return nil, fmt.Errorf("vizql: YEAR(%s) needs a temporal column", f.Col)
		}
		if !numOK || num != float64(int(num)) {
			return nil, fmt.Errorf("vizql: bad year literal %q", f.Str)
		}
		want := int(num)
		op := f.Op
		return func(i int) bool {
			if c.IsNull(i) {
				return false
			}
			year := time.Unix(c.SecAt(i), 0).UTC().Year()
			return op.cmpMatch(cmpInt(year, want), true)
		}, nil
	}
	switch c.Type {
	case dataset.Numerical:
		if !numOK {
			return nil, fmt.Errorf("vizql: filter on numerical column %q needs a numeric value, got %q", f.Col, f.Str)
		}
		op := f.Op
		return func(i int) bool {
			if c.IsNull(i) {
				return false
			}
			v := c.NumAt(i)
			return op.cmpMatch(cmpFloat(v, num), v == v && num == num)
		}, nil
	default:
		// Categorical (and non-year temporal) predicates compare cell
		// text; when both sides are numbers the comparison is numeric.
		op, str := f.Op, f.Str
		return func(i int) bool {
			if c.IsNull(i) {
				return false
			}
			raw := c.RawAt(i)
			if numOK {
				if v, err := strconv.ParseFloat(raw, 64); err == nil {
					return op.cmpMatch(cmpFloat(v, num), true)
				}
			}
			return op.cmpMatch(strings.Compare(raw, str), true)
		}, nil
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// applyQueryFilters evaluates the query's predicates over the table and
// rebuilds the X and Y columns from the surviving rows. It returns the
// original columns untouched when the query carries no filters.
func applyQueryFilters(t *dataset.Table, q Query, x, y *dataset.Column) (*dataset.Column, *dataset.Column, error) {
	if len(q.Filters) == 0 {
		return x, y, nil
	}
	evals := make([]filterEval, len(q.Filters))
	for i, f := range q.Filters {
		ev, err := compileFilter(t, f)
		if err != nil {
			return nil, nil, err
		}
		evals[i] = ev
	}
	n := x.Len()
	keep := make([]int, 0, n)
rows:
	for i := 0; i < n; i++ {
		for _, ev := range evals {
			if !ev(i) {
				continue rows
			}
		}
		keep = append(keep, i)
	}
	fx := rebuildKept(x, keep)
	fy := fx
	if y != x {
		fy = rebuildKept(y, keep)
	}
	return fx, fy, nil
}

// rebuildKept materializes a column restricted to the kept row indices,
// preserving the column's declared type and null flags.
func rebuildKept(c *dataset.Column, keep []int) *dataset.Column {
	raw := make([]string, len(keep))
	null := make([]bool, len(keep))
	for j, i := range keep {
		null[j] = c.IsNull(i)
		if !null[j] {
			raw[j] = c.RawAt(i)
		}
	}
	return dataset.RebuildColumn(c.Name, c.Type, raw, null)
}
