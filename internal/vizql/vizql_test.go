package vizql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/transform"
)

// flightTable builds a small analogue of the paper's Table I.
func flightTable(t *testing.T, rows int) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	carriers := []string{"UA", "AA", "MQ", "OO"}
	times := make([]time.Time, rows)
	carrier := make([]string, rows)
	dep := make([]float64, rows)
	arr := make([]float64, rows)
	pax := make([]float64, rows)
	for i := 0; i < rows; i++ {
		times[i] = base.Add(time.Duration(rng.Intn(365*24*60)) * time.Minute)
		carrier[i] = carriers[rng.Intn(len(carriers))]
		hour := float64(times[i].Hour())
		dep[i] = hour*1.5 - 10 + rng.NormFloat64()*3
		arr[i] = dep[i] + rng.NormFloat64()*2
		pax[i] = float64(80 + rng.Intn(150))
	}
	tab, err := dataset.New("flights", []*dataset.Column{
		dataset.TimeColumn("scheduled", times),
		dataset.CatColumn("carrier", carrier),
		dataset.NumColumn("departure_delay", dep),
		dataset.NumColumn("arrival_delay", arr),
		dataset.NumColumn("passengers", pax),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestParseQ1(t *testing.T) {
	// The paper's Q1 (Example 2).
	q, err := Parse(`VISUALIZE line
SELECT scheduled, AVG(departure_delay)
FROM flights
BIN scheduled BY HOUR
ORDER BY scheduled`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Viz != chart.Line || q.X != "scheduled" || q.Y != "departure_delay" {
		t.Errorf("q = %+v", q)
	}
	if q.Spec.Kind != transform.KindBinUnit || q.Spec.Unit != transform.ByHour || q.Spec.Agg != transform.AggAvg {
		t.Errorf("spec = %+v", q.Spec)
	}
	if q.Order != transform.SortX {
		t.Errorf("order = %v", q.Order)
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse("VISUALIZE pie SELECT carrier, SUM(passengers) FROM flights GROUP BY carrier", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec.Kind != transform.KindGroup || q.Spec.Agg != transform.AggSum {
		t.Errorf("spec = %+v", q.Spec)
	}
}

func TestParseBinInto(t *testing.T) {
	q, err := Parse("VISUALIZE bar SELECT delay, CNT(delay) FROM t BIN delay INTO 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec.Kind != transform.KindBinCount || q.Spec.N != 10 {
		t.Errorf("spec = %+v", q.Spec)
	}
}

func TestParseUDF(t *testing.T) {
	udfs := map[string]*transform.UDF{"sign": DefaultUDF}
	q, err := Parse("VISUALIZE pie SELECT delay, CNT(delay) FROM t BIN delay BY UDF(sign)", udfs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec.Kind != transform.KindBinUDF || q.Spec.UDF != DefaultUDF {
		t.Errorf("spec = %+v", q.Spec)
	}
	if _, err := Parse("VISUALIZE pie SELECT d, CNT(d) FROM t BIN d BY UDF(nope)", udfs); err == nil {
		t.Error("unknown UDF should fail")
	}
}

func TestParseTransformDefaultsToCount(t *testing.T) {
	q, err := Parse("VISUALIZE bar SELECT carrier, carrier FROM t GROUP BY carrier", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec.Agg != transform.AggCnt {
		t.Errorf("agg = %v, want CNT", q.Spec.Agg)
	}
}

func TestParseOrderByY(t *testing.T) {
	q, err := Parse("VISUALIZE bar SELECT c, SUM(v) FROM t GROUP BY c ORDER BY SUM(v)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Order != transform.SortY {
		t.Errorf("order = %v", q.Order)
	}
}

func TestParseQuotedColumn(t *testing.T) {
	q, err := Parse(`VISUALIZE bar SELECT "departure delay", CNT("departure delay") FROM t BIN "departure delay" INTO 5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.X != "departure delay" {
		t.Errorf("x = %q", q.X)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"VISUALIZE treemap SELECT a, b FROM t",
		"VISUALIZE bar SELECT a b FROM t",       // missing comma
		"VISUALIZE bar SELECT a, SUM(b) FROM t", // agg without transform
		"VISUALIZE bar SELECT a, b FROM t GROUP BY c",          // group col mismatch
		"VISUALIZE bar SELECT a, b FROM t BIN c INTO 5",        // bin col mismatch
		"VISUALIZE bar SELECT a, b FROM t BIN a INTO zero",     // bad count
		"VISUALIZE bar SELECT a, b FROM t BIN a BY FORTNIGHT",  // bad unit
		"VISUALIZE bar SELECT a, b FROM t ORDER BY c",          // order col mismatch
		"VISUALIZE bar SELECT a, b FROM t GROUP BY a trailing", // trailing tokens
		"VISUALIZE bar SELECT a, b FROM t BIN a",               // BIN without BY/INTO
	}
	for _, src := range bad {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"VISUALIZE line SELECT a, AVG(b) FROM t BIN a BY HOUR ORDER BY a",
		"VISUALIZE pie SELECT c, SUM(v) FROM t GROUP BY c",
		"VISUALIZE bar SELECT x, CNT(x) FROM t BIN x INTO 10 ORDER BY CNT(x)",
		"VISUALIZE scatter SELECT a, b FROM t",
	}
	for _, src := range srcs {
		q1, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		q2, err := Parse(q1.String(), nil)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q1.String(), err)
		}
		if q1.Key() != q2.Key() {
			t.Errorf("round trip: %q != %q", q1.Key(), q2.Key())
		}
	}
}

func TestExecuteQ1(t *testing.T) {
	tab := flightTable(t, 2000)
	q, err := Parse(`VISUALIZE line SELECT scheduled, AVG(departure_delay) FROM flights BIN scheduled BY HOUR ORDER BY scheduled`, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.Len() == 0 {
		t.Fatal("no buckets")
	}
	if n.InputRows != 2000 {
		t.Errorf("input rows = %d", n.InputRows)
	}
	if n.XOutType != dataset.Temporal {
		t.Errorf("x out type = %v", n.XOutType)
	}
	// feature sanity: |X'| = #buckets, chart type recorded
	if int(n.Features[1]) != n.Res.Len() || n.Features[13] != float64(chart.Line) {
		t.Errorf("features = %v", n.Features)
	}
}

func TestExecuteGroupPie(t *testing.T) {
	tab := flightTable(t, 500)
	q, _ := Parse("VISUALIZE pie SELECT carrier, SUM(passengers) FROM flights GROUP BY carrier", nil)
	n, err := Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.DistinctX() != 4 {
		t.Errorf("distinct carriers = %d", n.DistinctX())
	}
	d := n.Data()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.XNums != nil {
		t.Error("categorical axis should not be numeric")
	}
}

func TestExecuteScatterRaw(t *testing.T) {
	tab := flightTable(t, 300)
	q, _ := Parse("VISUALIZE scatter SELECT departure_delay, arrival_delay FROM flights", nil)
	n, err := Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Corr < 0.9 {
		t.Errorf("corr = %v, want high (delays are correlated by construction)", n.Corr)
	}
	if n.Data().XNums == nil {
		t.Error("numeric axis should be numeric")
	}
}

func TestExecuteErrors(t *testing.T) {
	tab := flightTable(t, 50)
	cases := []string{
		"VISUALIZE bar SELECT nope, CNT(nope) FROM flights GROUP BY nope",
		"VISUALIZE bar SELECT carrier, CNT(nope2) FROM flights GROUP BY carrier",
		"VISUALIZE bar SELECT carrier, SUM(carrier) FROM flights GROUP BY carrier", // SUM of categorical
		"VISUALIZE line SELECT carrier, carrier FROM flights",                      // raw needs numeric y
	}
	for _, src := range cases {
		q, err := Parse(src, nil)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if _, err := Execute(tab, q); err == nil {
			t.Errorf("Execute(%q) should fail", src)
		}
	}
}

func TestValidateQueryMatchesExecute(t *testing.T) {
	tab := flightTable(t, 60)
	for _, q := range EnumerateQueries(tab) {
		vErr := ValidateQuery(tab, q)
		_, eErr := Execute(tab, q)
		if vErr == nil && eErr != nil && !strings.Contains(eErr.Error(), "no data") {
			t.Errorf("validate ok but execute failed for %s: %v", q.Key(), eErr)
		}
		if vErr != nil && eErr == nil {
			t.Errorf("validate rejected but execute succeeded for %s: %v", q.Key(), vErr)
		}
	}
}

func TestEnumerateQueriesCount(t *testing.T) {
	tab := flightTable(t, 10)
	qs := EnumerateQueries(tab)
	m := tab.NumCols()
	// 40 meaningful transform/agg combos per ordered pair (1 raw + 13
	// kinds × 3 aggs), × 3 sorts × 4 chart types.
	want := m * (m - 1) * 40 * 3 * 4
	if len(qs) != want {
		t.Errorf("enumerated %d queries, want %d", len(qs), want)
	}
	// All within the paper's upper bound.
	if len(qs) > SearchSpaceTwoColumns(m) {
		t.Errorf("enumeration exceeds Fig. 3 bound: %d > %d", len(qs), SearchSpaceTwoColumns(m))
	}
}

func TestEnumerateOneColumnCount(t *testing.T) {
	tab := flightTable(t, 10)
	qs := EnumerateOneColumnQueries(tab)
	m := tab.NumCols()
	// 13 bucket kinds × CNT × 3 sorts × 4 chart types per column.
	want := m * 13 * 3 * 4
	if len(qs) != want {
		t.Errorf("enumerated %d one-column queries, want %d", len(qs), want)
	}
	if len(qs) > SearchSpaceOneColumn(m) {
		t.Errorf("one-column enumeration exceeds bound")
	}
}

func TestSearchSpaceFormulaTwoColumns(t *testing.T) {
	// Paper: 528·m(m−1); for the 6-column FlyDelay table that is 15,840.
	if got := SearchSpaceTwoColumns(6); got != 15840 {
		t.Errorf("SearchSpaceTwoColumns(6) = %d, want 15840", got)
	}
	if got := SearchSpaceTwoColumns(2); got != 1056 {
		t.Errorf("SearchSpaceTwoColumns(2) = %d, want 1056", got)
	}
}

func TestSearchSpaceFormulaOneColumn(t *testing.T) {
	if got := SearchSpaceOneColumn(6); got != 1584 {
		t.Errorf("SearchSpaceOneColumn(6) = %d, want 1584", got)
	}
}

func TestSearchSpaceFormulaThreeColumns(t *testing.T) {
	if got := SearchSpaceThreeColumns(6); got != 704*216 {
		t.Errorf("SearchSpaceThreeColumns(6) = %d", got)
	}
}

func TestSearchSpaceMultiY(t *testing.T) {
	// m=3: only z=2 → 3 × 11 × C(2,2) × 4² × 4 × 4 = 8448.
	if got := SearchSpaceMultiY(3); got != 8448 {
		t.Errorf("SearchSpaceMultiY(3) = %d, want 8448", got)
	}
	if SearchSpaceMultiY(2) != 0 {
		t.Error("m=2 has no multi-Y candidates")
	}
	// Monotone in m.
	prev := int64(0)
	for m := 3; m <= 12; m++ {
		v := SearchSpaceMultiY(m)
		if v <= prev {
			t.Errorf("SearchSpaceMultiY(%d) = %d not increasing", m, v)
		}
		prev = v
	}
}

func TestExecuteAllSharesTransforms(t *testing.T) {
	tab := flightTable(t, 400)
	qs := EnumerateQueries(tab)
	nodes := ExecuteAll(tab, qs)
	if len(nodes) == 0 {
		t.Fatal("no executable nodes")
	}
	// All nodes structurally valid.
	for _, n := range nodes {
		if n.Res.Len() == 0 {
			t.Fatalf("node %s has empty result", n.Query.Key())
		}
		if n.Features[7] != float64(n.Res.Len()) {
			t.Fatalf("node %s features out of sync", n.Query.Key())
		}
	}
	// Executing one-by-one yields the same count.
	count := 0
	for _, q := range qs {
		if _, err := Execute(tab, q); err == nil {
			count++
		}
	}
	if count != len(nodes) {
		t.Errorf("ExecuteAll = %d nodes, individual = %d", len(nodes), count)
	}
}

func TestExecuteAllConsistentWithExecute(t *testing.T) {
	tab := flightTable(t, 200)
	qs := EnumerateQueries(tab)[:2000]
	nodes := ExecuteAll(tab, qs)
	byKey := make(map[string]*Node)
	for _, n := range nodes {
		byKey[n.Query.Key()] = n
	}
	for _, q := range qs {
		single, err := Execute(tab, q)
		if err != nil {
			continue
		}
		batch := byKey[q.Key()]
		if batch == nil {
			t.Fatalf("batch missing %s", q.Key())
		}
		if single.Res.Len() != batch.Res.Len() {
			t.Errorf("%s: len %d vs %d", q.Key(), single.Res.Len(), batch.Res.Len())
		}
		if diff := single.Corr - batch.Corr; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: corr %v vs %v", q.Key(), single.Corr, batch.Corr)
		}
	}
}

func TestDedupe(t *testing.T) {
	tab := flightTable(t, 100)
	q1, _ := Parse("VISUALIZE bar SELECT carrier, CNT(carrier) FROM flights GROUP BY carrier", nil)
	n1, err := Execute(tab, q1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Execute(tab, q1)
	if err != nil {
		t.Fatal(err)
	}
	q3, _ := Parse("VISUALIZE pie SELECT carrier, CNT(carrier) FROM flights GROUP BY carrier", nil)
	n3, err := Execute(tab, q3)
	if err != nil {
		t.Fatal(err)
	}
	out := Dedupe([]*Node{n1, n2, n3})
	if len(out) != 2 {
		t.Errorf("dedupe kept %d, want 2", len(out))
	}
}

// Property: Query.String always re-parses to the same key, for enumerated
// queries over a random table.
func TestQueryStringRoundTripQuick(t *testing.T) {
	tab := flightTable(t, 20)
	qs := EnumerateQueries(tab)
	udfs := map[string]*transform.UDF{"sign": DefaultUDF}
	f := func(idx uint16) bool {
		q := qs[int(idx)%len(qs)]
		q2, err := Parse(q.String(), udfs)
		if err != nil {
			return false
		}
		return q.Key() == q2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecuteAllParallelMatchesSequential(t *testing.T) {
	tab := flightTable(t, 400)
	qs := EnumerateQueries(tab)
	seq := ExecuteAll(tab, qs)
	par := ExecuteAllParallel(tab, qs, 4)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	seqKeys := make(map[string]int)
	for _, n := range seq {
		seqKeys[n.Query.Key()]++
	}
	for _, n := range par {
		seqKeys[n.Query.Key()]--
	}
	for k, v := range seqKeys {
		if v != 0 {
			t.Fatalf("multiset mismatch at %s (%+d)", k, v)
		}
	}
}

func TestExecuteAllParallelSmallBatchFallsBack(t *testing.T) {
	tab := flightTable(t, 50)
	q, err := Parse("VISUALIZE bar SELECT carrier, CNT(carrier) FROM flights GROUP BY carrier", nil)
	if err != nil {
		t.Fatal(err)
	}
	out := ExecuteAllParallel(tab, []Query{q, q, q}, 8)
	if len(out) != 3 {
		t.Fatalf("nodes = %d, want 3", len(out))
	}
}
