package vizql

import (
	"context"
	"strings"
	"testing"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/transform"
)

func TestParseWhereLimitDescRoundTrip(t *testing.T) {
	srcs := []string{
		"VISUALIZE bar\nSELECT carrier, SUM(passengers)\nFROM flights\nWHERE carrier != \"MQ\"\nGROUP BY carrier",
		"VISUALIZE line\nSELECT scheduled, AVG(departure_delay)\nFROM flights\nWHERE YEAR(scheduled) != 2019\nBIN scheduled BY MONTH\nORDER BY scheduled",
		"VISUALIZE bar\nSELECT carrier, SUM(passengers)\nFROM flights\nWHERE passengers > 100 AND carrier = \"UA\"\nGROUP BY carrier\nORDER BY SUM(passengers) DESC\nLIMIT 3",
		"VISUALIZE scatter\nSELECT departure_delay, arrival_delay\nFROM flights\nWHERE departure_delay >= -5\nLIMIT 50",
	}
	for _, src := range srcs {
		q, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q.String(), nil)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if q.Key() != q2.Key() {
			t.Errorf("round trip changed key: %q -> %q", q.Key(), q2.Key())
		}
	}
}

func TestParseWhereRejects(t *testing.T) {
	bad := []string{
		"VISUALIZE bar\nSELECT carrier, CNT(carrier)\nFROM flights\nWHERE carrier ~ \"UA\"\nGROUP BY carrier",
		"VISUALIZE bar\nSELECT carrier, CNT(carrier)\nFROM flights\nWHERE carrier =\nGROUP BY carrier",
		"VISUALIZE bar\nSELECT carrier, CNT(carrier)\nFROM flights\nWHERE YEAR(scheduled) = soon\nGROUP BY carrier",
		"VISUALIZE bar\nSELECT carrier, CNT(carrier)\nFROM flights\nGROUP BY carrier\nLIMIT 0",
		"VISUALIZE bar\nSELECT carrier, CNT(carrier)\nFROM flights\nGROUP BY carrier\nLIMIT many",
	}
	for _, src := range bad {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

// TestUndecoratedTextUnchanged pins that the extended grammar leaves the
// legacy rendering and key of plain queries byte-identical.
func TestUndecoratedTextUnchanged(t *testing.T) {
	q := Query{
		Viz: chart.Line, X: "scheduled", Y: "departure_delay", From: "flights",
		Spec:  transform.Spec{Kind: transform.KindBinUnit, Unit: transform.ByHour, Agg: transform.AggAvg},
		Order: transform.SortX,
	}
	wantStr := "VISUALIZE line\nSELECT scheduled, AVG(departure_delay)\nFROM flights\nBIN scheduled BY HOUR\nORDER BY scheduled"
	if got := q.String(); got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
	if got, want := q.Key(), "line|scheduled|departure_delay|BIN BY HOUR,AVG|X"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func TestExecuteFilters(t *testing.T) {
	tab := flightTable(t, 400)

	// Categorical equality: only UA rows survive, so grouping by carrier
	// yields exactly one bucket.
	q := Query{
		Viz: chart.Bar, X: "carrier", Y: "passengers", From: "flights",
		Spec:    transform.Spec{Kind: transform.KindGroup, Agg: transform.AggSum},
		Filters: []Filter{{Col: "carrier", Op: FilterEq, Str: "UA"}},
	}
	n, err := Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.Len() != 1 || n.Res.XLabels[0] != "UA" {
		t.Errorf("filtered group = %v", n.Res.XLabels)
	}

	// Numeric comparison shrinks the input row count.
	q = Query{
		Viz: chart.Bar, X: "carrier", Y: "passengers", From: "flights",
		Spec:    transform.Spec{Kind: transform.KindGroup, Agg: transform.AggCnt},
		Filters: []Filter{{Col: "passengers", Op: FilterGe, Str: "150"}},
	}
	n, err = Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.InputRows >= 400 || n.InputRows == 0 {
		t.Errorf("InputRows = %d, want a strict non-empty subset of 400", n.InputRows)
	}

	// Year exclusion on the single-year fixture empties the result.
	q = Query{
		Viz: chart.Line, X: "scheduled", Y: "departure_delay", From: "flights",
		Spec:    transform.Spec{Kind: transform.KindBinUnit, Unit: transform.ByMonth, Agg: transform.AggAvg},
		Filters: []Filter{{Col: "scheduled", Op: FilterNe, Str: "2015", Num: 2015, Year: true}},
	}
	if _, err = Execute(tab, q); err == nil || !strings.Contains(err.Error(), "no data") {
		t.Errorf("excluding the only year: err = %v, want no-data", err)
	}
	// …while keeping it is a no-op on the bucket count.
	q.Filters[0].Op = FilterEq
	n, err = Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.Len() != 12 {
		t.Errorf("months = %d, want 12", n.Res.Len())
	}

	// Invalid combinations are errors, not silent misreads.
	for _, f := range []Filter{
		{Col: "nope", Op: FilterEq, Str: "x"},
		{Col: "carrier", Op: FilterEq, Str: "2015", Year: true},
		{Col: "passengers", Op: FilterGt, Str: "many"},
	} {
		q := Query{
			Viz: chart.Bar, X: "carrier", Y: "passengers", From: "flights",
			Spec:    transform.Spec{Kind: transform.KindGroup, Agg: transform.AggCnt},
			Filters: []Filter{f},
		}
		if _, err := Execute(tab, q); err == nil {
			t.Errorf("filter %+v unexpectedly executed", f)
		}
	}
}

func TestExecuteDescLimit(t *testing.T) {
	tab := flightTable(t, 400)
	q := Query{
		Viz: chart.Bar, X: "carrier", Y: "passengers", From: "flights",
		Spec:  transform.Spec{Kind: transform.KindGroup, Agg: transform.AggSum},
		Order: transform.SortY, Desc: true, Limit: 2,
	}
	n, err := Execute(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.Len() != 2 {
		t.Fatalf("limited buckets = %d, want 2", n.Res.Len())
	}
	if n.Res.Y[0] < n.Res.Y[1] {
		t.Errorf("DESC order violated: %v", n.Res.Y)
	}
	// The top bucket must be the true maximum over the unlimited run.
	full := q
	full.Desc, full.Limit = false, 0
	fn, err := Execute(tab, full)
	if err != nil {
		t.Fatal(err)
	}
	if max := fn.Res.Y[fn.Res.Len()-1]; n.Res.Y[0] != max {
		t.Errorf("top-1 = %v, want max %v", n.Res.Y[0], max)
	}
}

// TestExecuteAllDecoratedBypass pins that the batch executor produces
// the same node for a decorated query as the standalone executor, and
// that decorated and plain variants of one transform do not contaminate
// each other through the shared caches.
func TestExecuteAllDecoratedBypass(t *testing.T) {
	tab := flightTable(t, 400)
	plain := Query{
		Viz: chart.Bar, X: "carrier", Y: "passengers", From: "flights",
		Spec: transform.Spec{Kind: transform.KindGroup, Agg: transform.AggSum},
	}
	filtered := plain
	filtered.Filters = []Filter{{Col: "carrier", Op: FilterNe, Str: "UA"}}

	nodes, err := ExecuteAllCtx(context.Background(), tab, []Query{plain, filtered, plain})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(nodes))
	}
	if nodes[0].Res.Len() != nodes[2].Res.Len() {
		t.Errorf("plain variants disagree: %d vs %d", nodes[0].Res.Len(), nodes[2].Res.Len())
	}
	if nodes[1].Res.Len() != nodes[0].Res.Len()-1 {
		t.Errorf("filtered buckets = %d, want %d", nodes[1].Res.Len(), nodes[0].Res.Len()-1)
	}
	want, err := Execute(tab, filtered)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[1].Res.Len() != want.Res.Len() || nodes[1].InputRows != want.InputRows {
		t.Errorf("batch decorated node differs from standalone execution")
	}
}
