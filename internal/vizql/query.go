// Package vizql implements DeepEye's visualization language (paper §II-B,
// Fig. 2): the query AST, a text parser, the executor that materializes a
// query over a table into a visualization node (Def. 1), the search-space
// enumerators for one and two columns, and the closed-form search-space
// counting of Fig. 3.
//
// A query has three mandatory clauses (VISUALIZE, SELECT, FROM) and two
// optional clauses (TRANSFORM — GROUP BY / BIN — and ORDER BY):
//
//	VISUALIZE line
//	SELECT scheduled, AVG(departure_delay)
//	FROM flights
//	BIN scheduled BY HOUR
//	ORDER BY scheduled
package vizql

import (
	"fmt"
	"strings"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/transform"
)

// Query is the AST of one visualization query Q; Q(D) produces a chart.
// Filters, Desc, and Limit extend the paper's language for the NL
// front-end; their zero values leave the query's text, key, and
// execution exactly as the original grammar defines.
type Query struct {
	Viz   chart.Type
	X     string // column on the x-axis (SELECT first item)
	Y     string // column aggregated/plotted on the y-axis; may equal X
	From  string // source table name (informational)
	Spec  transform.Spec
	Order transform.SortAxis

	Filters []Filter // AND-combined WHERE predicates over source rows
	Desc    bool     // reverse the ORDER BY axis (rendered only with one)
	Limit   int      // keep at most this many buckets after sorting; 0 = all
}

// Decorated reports whether the query uses any of the extended clauses,
// which excludes it from the batch executor's shared transform caches.
func (q Query) Decorated() bool {
	return len(q.Filters) > 0 || q.Desc || q.Limit > 0
}

// quoteIdent quotes a column or table name when it would not survive
// tokenization as a single token.
func quoteIdent(name string) string {
	if strings.ContainsAny(name, " \t\n,\"") {
		return `"` + strings.ReplaceAll(name, `"`, "") + `"`
	}
	return name
}

// String renders the query in the paper's language (parseable by Parse).
func (q Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "VISUALIZE %s\n", q.Viz)
	x := quoteIdent(q.X)
	y := quoteIdent(q.Y)
	ySel := y
	switch q.Spec.Agg {
	case transform.AggSum:
		ySel = fmt.Sprintf("SUM(%s)", y)
	case transform.AggAvg:
		ySel = fmt.Sprintf("AVG(%s)", y)
	case transform.AggCnt:
		ySel = fmt.Sprintf("CNT(%s)", y)
	}
	fmt.Fprintf(&sb, "SELECT %s, %s\n", x, ySel)
	from := q.From
	if from == "" {
		from = "?"
	}
	fmt.Fprintf(&sb, "FROM %s", quoteIdent(from))
	for i, f := range q.Filters {
		if i == 0 {
			sb.WriteString("\nWHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		sb.WriteString(f.String())
	}
	switch q.Spec.Kind {
	case transform.KindGroup:
		fmt.Fprintf(&sb, "\nGROUP BY %s", x)
	case transform.KindBinUnit:
		fmt.Fprintf(&sb, "\nBIN %s BY %s", x, q.Spec.Unit)
	case transform.KindBinCount:
		fmt.Fprintf(&sb, "\nBIN %s INTO %d", x, q.Spec.N)
	case transform.KindBinUDF:
		name := "udf"
		if q.Spec.UDF != nil {
			name = q.Spec.UDF.Name
		}
		fmt.Fprintf(&sb, "\nBIN %s BY UDF(%s)", x, name)
	}
	switch q.Order {
	case transform.SortX:
		fmt.Fprintf(&sb, "\nORDER BY %s", x)
	case transform.SortY:
		fmt.Fprintf(&sb, "\nORDER BY %s", ySel)
	}
	if q.Desc && q.Order != transform.SortNone {
		sb.WriteString(" DESC")
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "\nLIMIT %d", q.Limit)
	}
	return sb.String()
}

// Key returns a compact canonical identity for deduplication: two queries
// with the same key produce the same visualization. Undecorated queries
// keep their historical key shape.
func (q Query) Key() string {
	base := fmt.Sprintf("%s|%s|%s|%s|%s", q.Viz, q.X, q.Y, q.Spec, q.Order)
	if !q.Decorated() {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	for _, f := range q.Filters {
		sb.WriteString("|W:")
		sb.WriteString(f.String())
	}
	if q.Desc {
		sb.WriteString("|DESC")
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "|L:%d", q.Limit)
	}
	return sb.String()
}
