package vizql

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/transform"
)

// fmtDataFingerprint is the historical fmt.Fprintf encoding of the dedupe
// key, kept verbatim as the reference for the strconv implementation.
func fmtDataFingerprint(n *Node) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|", n.Chart, n.XName, n.YName, n.Res.Len())
	for i := 0; i < n.Res.Len(); i++ {
		fmt.Fprintf(h, "%s=%.9g;", n.Res.XLabels[i], roundSig(n.Res.Y[i]))
	}
	return fmt.Sprintf("%x", h.Sum64())
}

// TestDataFingerprintMatchesFmt pins the strconv-built dedupe stream to
// the fmt encoding it replaced, over adversarial values (every %g shape:
// fixed, exponent, subnormal, ±Inf, NaN, ±0) and labels (separator
// bytes, NUL, unicode, empties), plus every node the real enumeration
// produces for a mixed-type table.
func TestDataFingerprintMatchesFmt(t *testing.T) {
	ys := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		123456789, 1234567891, 12345678912, // crosses the 9-sig-digit edge
		1e-10, -1e-10, 1e21, -1e21, 1e-21,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		3.141592653589793, 2.5, 3.5, // round-to-even candidates
		1.0000000005, 0.999999999499, 99999999.95,
	}
	labels := []string{
		"", "a", "=", ";", "|", "a=b;c|d", "a\x00b", "héllo", "0", "-1",
		"[10, 20)", "wk 2024-01-01", "00:00",
	}
	var nodes []*Node
	for i, y := range ys {
		nodes = append(nodes, &Node{
			Chart: chart.Type(i % 4),
			XName: labels[i%len(labels)],
			YName: labels[(i+7)%len(labels)],
			Res: &transform.Result{
				XLabels: []string{labels[i%len(labels)], labels[(i+3)%len(labels)]},
				Y:       []float64{y, ys[(i+11)%len(ys)]},
			},
		})
	}
	// Empty result and a long mixed series.
	nodes = append(nodes, &Node{Chart: chart.Bar, XName: "x", YName: "y", Res: &transform.Result{}})
	long := &transform.Result{}
	for i, y := range ys {
		long.XLabels = append(long.XLabels, labels[i%len(labels)])
		long.Y = append(long.Y, y)
	}
	nodes = append(nodes, &Node{Chart: chart.Line, XName: "x", YName: "y", Res: long})

	// Real enumeration output for a mixed categorical/temporal/numerical table.
	tab := flightTable(t, 60)
	nodes = append(nodes, ExecuteAll(tab, EnumerateQueries(tab))...)

	for i, n := range nodes {
		if got, want := dataFingerprint(n), fmtDataFingerprint(n); got != want {
			t.Errorf("node %d (%s|%s|%s len=%d): strconv fingerprint %s != fmt reference %s",
				i, n.Chart, n.XName, n.YName, n.Res.Len(), got, want)
		}
	}
}
