package vizql

import (
	"math"
	"strings"
	"testing"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/transform"
)

func TestParseMultiY(t *testing.T) {
	q, err := ParseMulti("VISUALIZE line SELECT scheduled, AVG(departure_delay), AVG(arrival_delay) FROM flights BIN scheduled BY MONTH", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Viz != chart.Line || q.X != "scheduled" || len(q.Ys) != 2 {
		t.Errorf("q = %+v", q)
	}
	if q.Aggs[0] != transform.AggAvg || q.Aggs[1] != transform.AggAvg {
		t.Errorf("aggs = %v", q.Aggs)
	}
	if q.Spec.Kind != transform.KindBinUnit || q.Spec.Unit != transform.ByMonth {
		t.Errorf("spec = %+v", q.Spec)
	}
}

func TestParseSeriesBy(t *testing.T) {
	q, err := ParseMulti("VISUALIZE bar SELECT scheduled, SUM(passengers) FROM flights BIN scheduled BY MONTH SERIES BY destination", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Series != "destination" || len(q.Ys) != 1 || q.Ys[0] != "passengers" {
		t.Errorf("q = %+v", q)
	}
}

func TestParseMultiErrors(t *testing.T) {
	bad := []string{
		"VISUALIZE line SELECT x, AVG(a) FROM t GROUP BY x",    // single Y, no series
		"VISUALIZE line SELECT x, a, b FROM t GROUP BY x",      // bare items
		"VISUALIZE line SELECT x FROM t",                       // no items
		"VISUALIZE line SELECT x, AVG(a), AVG(b) FROM t extra", // trailing
		"VISUALIZE line SELECT x, AVG(a), AVG(b) FROM t GROUP BY y",
	}
	for _, src := range bad {
		if _, err := ParseMulti(src, nil); err == nil {
			t.Errorf("ParseMulti(%q) should fail", src)
		}
	}
}

func TestParseMultiRoundTrip(t *testing.T) {
	srcs := []string{
		"VISUALIZE line SELECT x, AVG(a), SUM(b) FROM t GROUP BY x",
		"VISUALIZE bar SELECT x, SUM(z) FROM t BIN x INTO 10 SERIES BY c",
	}
	for _, src := range srcs {
		q1, err := ParseMulti(src, nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		q2, err := ParseMulti(q1.String(), nil)
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip mismatch: %q vs %q", q1.String(), q2.String())
		}
	}
}

func TestExecuteMultiY(t *testing.T) {
	tab := flightTable(t, 1000)
	q, err := ParseMulti("VISUALIZE line SELECT scheduled, AVG(departure_delay), AVG(arrival_delay) FROM flights BIN scheduled BY MONTH", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ExecuteMulti(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.NumSeries() != 2 {
		t.Fatalf("series = %d", n.Res.NumSeries())
	}
	if n.Res.Len() != 12 {
		t.Errorf("buckets = %d, want 12 months", n.Res.Len())
	}
	d := n.Data()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	out := chart.RenderMultiASCII(d, chart.RenderOptions{Width: 40, Height: 8})
	if !strings.Contains(out, "AVG(departure_delay)") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestExecuteMultiYMatchesSingle(t *testing.T) {
	tab := flightTable(t, 600)
	q, _ := ParseMulti("VISUALIZE bar SELECT carrier, SUM(passengers), AVG(passengers) FROM flights GROUP BY carrier", nil)
	n, err := ExecuteMulti(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	// Series 0 must equal the single-query SUM result.
	single, err := Execute(tab, Query{
		Viz: chart.Bar, X: "carrier", Y: "passengers", From: "flights",
		Spec: transform.Spec{Kind: transform.KindGroup, Agg: transform.AggSum},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.Len() != single.Res.Len() {
		t.Fatalf("bucket mismatch: %d vs %d", n.Res.Len(), single.Res.Len())
	}
	for i := range single.Res.Y {
		if math.Abs(n.Res.Series[0][i]-single.Res.Y[i]) > 1e-9 {
			t.Errorf("bucket %d: %v vs %v", i, n.Res.Series[0][i], single.Res.Y[i])
		}
	}
}

func TestExecuteXYZStackedBar(t *testing.T) {
	tab := flightTable(t, 1500)
	q, err := ParseMulti("VISUALIZE bar SELECT scheduled, SUM(passengers) FROM flights BIN scheduled BY MONTH SERIES BY carrier", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ExecuteMulti(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if n.Res.NumSeries() != 4 { // four carriers in flightTable
		t.Fatalf("series = %d, want 4 carriers", n.Res.NumSeries())
	}
	// Stacked totals must match the single-query monthly SUM.
	single, err := Execute(tab, Query{
		Viz: chart.Bar, X: "scheduled", Y: "passengers", From: "flights",
		Spec: transform.Spec{Kind: transform.KindBinUnit, Unit: transform.ByMonth, Agg: transform.AggSum},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Res.Y {
		var total float64
		for _, s := range n.Res.Series {
			if !math.IsNaN(s[i]) {
				total += s[i]
			}
		}
		if math.Abs(total-single.Res.Y[i]) > 1e-6 {
			t.Errorf("month %d: stacked total %v vs %v", i, total, single.Res.Y[i])
		}
	}
	out := chart.RenderMultiASCII(n.Data(), chart.RenderOptions{})
	if !strings.Contains(out, "stack:") {
		t.Errorf("stacked render missing legend:\n%s", out)
	}
}

func TestExecuteMultiErrors(t *testing.T) {
	tab := flightTable(t, 100)
	cases := []MultiQuery{
		{Viz: chart.Pie, X: "carrier", Ys: []string{"passengers", "departure_delay"},
			Aggs: []transform.Agg{transform.AggSum, transform.AggSum},
			Spec: transform.Spec{Kind: transform.KindGroup}},
		{Viz: chart.Line, X: "nope", Ys: []string{"passengers", "departure_delay"},
			Aggs: []transform.Agg{transform.AggSum, transform.AggSum},
			Spec: transform.Spec{Kind: transform.KindGroup}},
		{Viz: chart.Line, X: "carrier", Ys: []string{"passengers", "nope"},
			Aggs: []transform.Agg{transform.AggSum, transform.AggSum},
			Spec: transform.Spec{Kind: transform.KindGroup}},
		{Viz: chart.Bar, X: "scheduled", Ys: []string{"passengers", "departure_delay"},
			Aggs: []transform.Agg{transform.AggSum, transform.AggSum}, Series: "carrier",
			Spec: transform.Spec{Kind: transform.KindBinUnit, Unit: transform.ByMonth}},
	}
	for i, q := range cases {
		if _, err := ExecuteMulti(tab, q); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestEnumerateMultiY(t *testing.T) {
	tab := flightTable(t, 200)
	qs := EnumerateMultiYQueries(tab)
	if len(qs) == 0 {
		t.Fatal("no multi-Y candidates")
	}
	ok := 0
	for _, q := range qs {
		if _, err := ExecuteMulti(tab, q); err == nil {
			ok++
		}
	}
	if ok == 0 {
		t.Error("no multi-Y candidate executed")
	}
}

func TestEnumerateXYZ(t *testing.T) {
	tab := flightTable(t, 200)
	qs := EnumerateXYZQueries(tab)
	if len(qs) == 0 {
		t.Fatal("no XYZ candidates")
	}
	ok := 0
	for _, q := range qs {
		if _, err := ExecuteMulti(tab, q); err == nil {
			ok++
		}
	}
	if ok == 0 {
		t.Error("no XYZ candidate executed")
	}
}
