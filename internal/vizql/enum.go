package vizql

import (
	"context"
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/feature"
	"github.com/deepeye/deepeye/internal/stats"
	"github.com/deepeye/deepeye/internal/transform"
)

// DefaultUDF is the paper's example user-defined binning function:
// splitting a numerical column at 0 (e.g. early vs late departures,
// Fig. 5(d)).
var DefaultUDF = &transform.UDF{
	Name: "sign",
	Fn: func(v float64) (string, float64) {
		if v < 0 {
			return "< 0", 0
		}
		return ">= 0", 1
	},
}

// enumSpecs returns the transform space for one ordered column pair: do
// nothing, GROUP BY X, or one of the binnings (7 absolute calendar units,
// 3 periodic calendar units, default buckets, UDF), crossed with the
// aggregate choices. Raw pass-through carries no aggregate;
// grouped/binned transforms carry one of {SUM, AVG, CNT}. The resulting
// 40 combinations stay within the paper's 44-case bound (Fig. 3).
func enumSpecs() []transform.Spec {
	kinds := []transform.Spec{
		{Kind: transform.KindGroup},
		{Kind: transform.KindBinUnit, Unit: transform.ByMinute},
		{Kind: transform.KindBinUnit, Unit: transform.ByHour},
		{Kind: transform.KindBinUnit, Unit: transform.ByDay},
		{Kind: transform.KindBinUnit, Unit: transform.ByWeek},
		{Kind: transform.KindBinUnit, Unit: transform.ByMonth},
		{Kind: transform.KindBinUnit, Unit: transform.ByQuarter},
		{Kind: transform.KindBinUnit, Unit: transform.ByYear},
		{Kind: transform.KindBinUnit, Unit: transform.ByHourOfDay},
		{Kind: transform.KindBinUnit, Unit: transform.ByDayOfWeek},
		{Kind: transform.KindBinUnit, Unit: transform.ByMonthOfYear},
		{Kind: transform.KindBinCount, N: transform.DefaultBinCount},
		{Kind: transform.KindBinUDF, UDF: DefaultUDF},
	}
	aggs := []transform.Agg{transform.AggSum, transform.AggAvg, transform.AggCnt}
	specs := []transform.Spec{{Kind: transform.KindNone, Agg: transform.AggNone}}
	for _, k := range kinds {
		for _, a := range aggs {
			s := k
			s.Agg = a
			specs = append(specs, s)
		}
	}
	return specs
}

var sortAxes = []transform.SortAxis{transform.SortNone, transform.SortX, transform.SortY}

// EnumerateQueries generates the full two-column search space of Fig. 3
// for a table: every ordered column pair, every transform/aggregate
// combination, every sort axis, every chart type. This is the exhaustive
// "E" configuration of the paper's Fig. 12; most candidates are bad or
// even inexecutable (type mismatches) and are filtered downstream.
func EnumerateQueries(t *dataset.Table) []Query {
	var out []Query
	specs := enumSpecs()
	for i, x := range t.Columns {
		for j, y := range t.Columns {
			if i == j {
				continue
			}
			for _, spec := range specs {
				for _, sort := range sortAxes {
					for _, typ := range chart.AllTypes {
						out = append(out, Query{
							Viz: typ, X: x.Name, Y: y.Name, From: t.Name,
							Spec: spec, Order: sort,
						})
					}
				}
			}
		}
	}
	return out
}

// EnumerateOneColumnQueries generates the one-column extension (§II-B):
// group or bin a single column and count the tuples per bucket. The query
// selects the same column as X and Y with CNT.
func EnumerateOneColumnQueries(t *dataset.Table) []Query {
	var out []Query
	for _, c := range t.Columns {
		for _, spec := range enumSpecs() {
			if spec.Kind == transform.KindNone || spec.Agg != transform.AggCnt {
				continue // one-column charts are histogram-like: bucket + CNT
			}
			for _, sort := range sortAxes {
				for _, typ := range chart.AllTypes {
					out = append(out, Query{
						Viz: typ, X: c.Name, Y: c.Name, From: t.Name,
						Spec: spec, Order: sort,
					})
				}
			}
		}
	}
	return out
}

// ExecuteAll materializes a batch of queries, silently dropping the ones
// that cannot execute (type-incompatible transforms, empty output). A
// transform cache keyed on (X, Y, spec, sort) is shared across chart
// types, so the four chart variants of one transform cost a single pass
// over the data — the first optimization of §V-B.
func ExecuteAll(t *dataset.Table, queries []Query) []*Node {
	out, _ := ExecuteAllCtx(context.Background(), t, queries)
	return out
}

// ExecuteAllCtx is ExecuteAll with cancellation: the batch loop checks
// ctx between queries (each query is at most one pass over the data) and
// returns ctx.Err() as soon as cancellation is observed.
//
// Two cache layers share work across the batch. The bucketing cache
// keys on (X, kind, unit, N) — the Y-agnostic half of a transform — so
// the bucket-formation pass over the rows runs once per distinct X
// binning and is reused by every Y column, aggregate, and sort order
// over it. The materialization cache keys on (X, Y, spec, sort class)
// and holds the aggregated series plus its derived statistics and
// feature inputs, so the chart-type variants of one transform pay only
// a feature.Extract each. ORDER BY X folds into the unsorted class:
// transforms emit buckets already in X order, and re-sorting stably
// under the same comparator is an identity.
func ExecuteAllCtx(ctx context.Context, t *dataset.Table, queries []Query) ([]*Node, error) {
	type cacheKey struct {
		x, y, spec string
		sort       transform.SortAxis
	}
	caches := &execCaches{
		bk:          make(map[bucketingKey]*transform.Bucketing),
		raw:         make(map[[2]string]*transform.Result),
		rawDistinct: make(map[[2]string]int),
		bkDistinct:  make(map[distinctKey]int),
		base:        make(map[baseKey]*transform.Result),
		yi:          make(map[*transform.Result]feature.ColumnInfo),
	}
	cache := make(map[cacheKey]*sharedExec)
	var out []*Node
	for _, q := range queries {
		// A cache miss costs a full pass over the data, so check before
		// every query to keep cancellation latency within one pass.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Decorated queries (WHERE/DESC/LIMIT) change the row set or the
		// bucket order, so nothing about their materialization can share
		// the batch caches; they run standalone and drop on error exactly
		// like an inexecutable plain query. The rule/exhaustive
		// enumerators never emit them, so the hot path is untouched.
		if q.Decorated() {
			n, err := ExecuteCtx(ctx, t, q)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue
			}
			out = append(out, n)
			continue
		}
		sc := q.Order
		if sc == transform.SortX && q.Spec.Kind != transform.KindNone {
			sc = transform.SortNone
		}
		key := cacheKey{q.X, q.Y, q.Spec.String(), sc}
		cv := cache[key]
		if cv == nil {
			cv = executeShared(t, q, sc, caches)
			cache[key] = cv
		}
		if !cv.ok {
			continue
		}
		n := &Node{
			Query: q, Chart: q.Viz,
			XName: q.X, YName: q.Y,
			XType: cv.xType, YType: cv.yType,
			InputRows: cv.res.InputRows,
			Res:       cv.res, // shared read-only with sibling chart types
			XOutType:  cv.xOutType,
			Corr:      cv.corr,
			TrendR2:   cv.trendR2,
			TrendKind: cv.trendKind,
			distinctX: cv.xi.Distinct,
		}
		n.Features = feature.Extract(cv.xi, cv.yi, cv.corr, n.Chart)
		out = append(out, n)
	}
	return out, nil
}

// bucketingKey identifies the Y-agnostic half of a transform over one
// X column: everything that determines bucket membership.
type bucketingKey struct {
	x    string
	kind transform.Kind
	unit transform.BinUnit
	n    int
	udf  string
}

// sharedExec is one materialized (X, Y, spec, sort class) combination:
// the transformed series plus every derived quantity the chart-type
// variants share.
type sharedExec struct {
	res          *transform.Result
	xType, yType dataset.ColType
	xOutType     dataset.ColType
	corr         float64
	trendR2      float64
	trendKind    stats.TrendKind
	xi, yi       feature.ColumnInfo
	ok           bool
}

// executeShared materializes one cache entry, reusing (or seeding) the
// shared bucketing for the query's X transform. Inexecutable queries —
// unknown columns, type-incompatible transforms, empty output — yield
// an entry with ok == false, mirroring ExecuteCtx's error cases.
// execCaches bundles the batch-scoped shared state: the Y-agnostic
// bucketings, the per-pair raw materializations, and the raw label
// distinct counts (order-invariant, so the three sort classes of one
// pair share one count).
type execCaches struct {
	bk          map[bucketingKey]*transform.Bucketing
	raw         map[[2]string]*transform.Result
	rawDistinct map[[2]string]int
	bkDistinct  map[distinctKey]int
	base        map[baseKey]*transform.Result
	yi          map[*transform.Result]feature.ColumnInfo
}

// baseKey identifies the row-order materialization of one (X, Y, spec)
// — what the sort classes of a transform share before OrderBy.
type baseKey struct {
	x, y, spec string
}

// distinctKey identifies everything the label set of a bucketed result
// depends on. Under CNT the labels are exactly the bucketing's (the
// counts path shares bk.Labels), so y stays empty and every Y column
// reuses one count; under SUM/AVG buckets whose rows all have null Y
// are dropped, so the drop set — determined by the bucketing and the
// Y column, not the aggregate — joins the key.
type distinctKey struct {
	bk bucketingKey
	y  string
}

func executeShared(t *dataset.Table, q Query, sc transform.SortAxis, caches *execCaches) *sharedExec {
	sr := &sharedExec{}
	x := t.Column(q.X)
	y := t.Column(q.Y)
	if x == nil || y == nil {
		return sr
	}
	needY := q.Spec.Agg == transform.AggSum || q.Spec.Agg == transform.AggAvg
	if needY && y.Type != dataset.Numerical {
		return sr
	}
	var res *transform.Result
	var dk distinctKey
	// A UDF under SUM/AVG derives bucket order from the first non-null-Y
	// row — Y-dependent, so it cannot share a bucketing; neither can raw
	// pass-through, which has no buckets at all.
	if q.Spec.Kind == transform.KindNone {
		// Raw pass-through has one materialization per (X, Y) — the three
		// sort classes differ only in the OrderBy below, so the row-order
		// result is cached and the sorted classes rebind fresh slices off
		// it (nil marks an inexecutable pair, mirroring bkCache).
		rk := [2]string{q.X, q.Y}
		r, seen := caches.raw[rk]
		if !seen {
			if a, err := transform.Apply(x, y, q.Spec); err == nil {
				r = a
			}
			caches.raw[rk] = r
		}
		if r == nil {
			return sr
		}
		res = r
	} else if q.Spec.Kind == transform.KindBinUDF && needY {
		bkey := baseKey{x: q.X, y: q.Y, spec: q.Spec.String()}
		r, seen := caches.base[bkey]
		if !seen {
			if a, err := transform.Apply(x, y, q.Spec); err == nil {
				r = a
			}
			caches.base[bkey] = r // nil marks an inexecutable combination
		}
		if r == nil {
			return sr
		}
		res = r
		// The bucket set admits rows with non-null X and Y regardless of
		// which of SUM/AVG aggregates them.
		dk = distinctKey{bk: bucketingKey{x: q.X, kind: q.Spec.Kind}, y: q.Y}
		if q.Spec.UDF != nil {
			dk.bk.udf = q.Spec.UDF.Name
		}
	} else {
		k := bucketingKey{x: q.X, kind: q.Spec.Kind, unit: q.Spec.Unit, n: q.Spec.N}
		if q.Spec.Kind == transform.KindBinUDF && q.Spec.UDF != nil {
			k.udf = q.Spec.UDF.Name
		}
		dk = distinctKey{bk: k}
		if needY {
			dk.y = q.Y
		}
		bk, seen := caches.bk[k]
		if !seen {
			if b, err := transform.Bucketize(x, q.Spec); err == nil {
				bk = b
			}
			caches.bk[k] = bk // nil marks an invalid (x, spec) combination
		}
		if bk == nil {
			return sr
		}
		bkey := baseKey{x: q.X, y: q.Y, spec: q.Spec.String()}
		r, seen := caches.base[bkey]
		if !seen {
			// Ranking, dedupe, and the rendered chart never touch
			// SourceRows (consumers that need provenance guard on its
			// presence), so the per-bucket row lists — the batch's
			// largest allocation — are not materialized here.
			r = transform.ApplyBucketed(bk, y, q.Spec, false)
			caches.base[bkey] = r
		}
		res = r
	}
	if res.Len() == 0 {
		return sr
	}
	base := res
	if sc != transform.SortNone {
		// SortX survives the fold only for raw pass-through, where rows
		// really are unordered; SortY reorders any result. The result
		// struct is fresh per cache entry and OrderBy rebinds sorted
		// copies without touching the original arrays, so slices shared
		// with the bucketing or sibling entries keep their own X order.
		res = &transform.Result{
			XLabels: res.XLabels, XOrder: res.XOrder, Y: res.Y,
			SourceRows: res.SourceRows, InputRows: res.InputRows,
		}
		transform.OrderBy(res, sc)
	}
	sr.res = res
	sr.xType, sr.yType = x.Type, y.Type
	sr.xOutType = outType(x.Type, q.Spec.Kind)
	if sr.xOutType != dataset.Categorical {
		// The NaN-filtered (X′, Y′) series feeds three scalar summaries
		// and is never retained, so the buffers come from a pool.
		buf := xyScratch.Get().(*xyBufs)
		cx, cy := buf.x[:0], buf.y[:0]
		for i := range res.XOrder {
			if !math.IsNaN(res.XOrder[i]) {
				cx = append(cx, res.XOrder[i])
				cy = append(cy, res.Y[i])
			}
		}
		sr.corr, sr.trendKind, sr.trendR2 = feature.CorrelationTrend(cx, cy)
		// Only min(X′)/max(X′) of the summary survive: N is reset to the
		// transformed length and Distinct to the label count below, so
		// FromSeries' distinct-counting pass would be thrown away.
		sr.xi = feature.ColumnInfo{Type: sr.xOutType, Min: math.Inf(1), Max: math.Inf(-1)}
		for _, v := range cx {
			if v < sr.xi.Min {
				sr.xi.Min = v
			}
			if v > sr.xi.Max {
				sr.xi.Max = v
			}
		}
		if len(cx) == 0 {
			sr.xi.Min, sr.xi.Max = 0, 0
		}
		buf.x, buf.y = cx, cy
		xyScratch.Put(buf)
	} else {
		sr.corr = 0
		sr.trendKind, sr.trendR2 = stats.TrendSeries(res.Y)
		sr.xi = feature.ColumnInfo{Type: dataset.Categorical}
	}
	sr.xi.N = res.Len()
	// d(X′) counts distinct labels on every branch (FromSeries counted
	// distinct order keys, not labels). The count is order-invariant, so
	// raw pass-through — whose three sort classes share one label
	// multiset, and whose |X|-sized label sets dominate the cost —
	// computes it once per column pair.
	if q.Spec.Kind == transform.KindNone {
		rk := [2]string{q.X, q.Y}
		d, ok := caches.rawDistinct[rk]
		if !ok {
			d = distinctLabels(res.XLabels)
			caches.rawDistinct[rk] = d
		}
		sr.xi.Distinct = d
	} else {
		d, ok := caches.bkDistinct[dk]
		if !ok {
			d = distinctLabels(res.XLabels)
			caches.bkDistinct[dk] = d
		}
		sr.xi.Distinct = d
	}
	// The Y′ summary — min, max, N, distinct — is invariant under the
	// sort-class permutation (distinct counting sorts its own copy), so
	// the classes of one (X, Y, spec) share the base result's summary.
	// Per-order statistics (corr, trend) stay per-entry above: their
	// accumulation order is the result order.
	yi, ok := caches.yi[base]
	if !ok {
		yi = feature.FromSeries(res.Y, dataset.Numerical)
		caches.yi[base] = yi
	}
	sr.yi = yi
	sr.ok = true
	return sr
}

func distinctLabels(labels []string) int {
	return feature.FromLabels(labels).Distinct
}

// xyBufs holds the NaN-filtered numeric series scratch for executeShared.
type xyBufs struct{ x, y []float64 }

var xyScratch = sync.Pool{New: func() any { return new(xyBufs) }}

// SearchSpaceTwoColumns is the Fig. 3 closed form for two columns:
// m(m−1) ordered pairs × 44 transform cases × 4 chart types × 3 sort
// choices = 528·m(m−1).
func SearchSpaceTwoColumns(m int) int {
	return 528 * m * (m - 1)
}

// SearchSpaceOneColumn is the paper's one-column extension count:
// m columns × 22 transform cases × 4 chart types × 3 sort choices = 264·m.
func SearchSpaceOneColumn(m int) int {
	return 264 * m
}

// SearchSpaceThreeColumns is the paper's (X, Y, Z) extension count:
// m³ column selections × 44 transforms × 4 aggregations × 4 sort choices
// = 704·m³.
func SearchSpaceThreeColumns(m int) int {
	return 704 * m * m * m
}

// SearchSpaceMultiY counts the multi-Y extension: one X column with z
// Y-columns (2 ≤ z ≤ m−1) compared on the same axes. Following §II-B with
// the combinatorics made explicit: choose X (m ways), choose the z Y
// columns from the remaining m−1, transform X (11 ways), aggregate each Y
// independently (4^z), pick a chart type (4), and sort by X′, one of the
// z Y′s, or nothing (z+2). Overflow-safe up to m ≈ 30 for int64.
func SearchSpaceMultiY(m int) int64 {
	var total int64
	for z := 2; z <= m-1; z++ {
		c := binomial(m-1, z)
		term := int64(m) * 11 * c * pow64(4, z) * 4 * int64(z+2)
		total += term
	}
	return total
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i) / int64(i)
	}
	return res
}

func pow64(base, exp int) int64 {
	r := int64(1)
	for i := 0; i < exp; i++ {
		r *= int64(base)
	}
	return r
}

// CountExecutable reports how many of the enumerated two-column queries
// actually execute on the table — a sanity measure used in tests and the
// search-space experiment (it is far below the Fig. 3 upper bound because
// most transform/type combinations are invalid).
func CountExecutable(t *dataset.Table) int {
	return len(ExecuteAll(t, EnumerateQueries(t)))
}

// ValidateQuery checks a query against a table without executing it:
// referenced columns exist and the transform is type-compatible.
func ValidateQuery(t *dataset.Table, q Query) error {
	x := t.Column(q.X)
	if x == nil {
		return fmt.Errorf("vizql: unknown column %q", q.X)
	}
	y := t.Column(q.Y)
	if y == nil {
		return fmt.Errorf("vizql: unknown column %q", q.Y)
	}
	switch q.Spec.Kind {
	case transform.KindBinUnit:
		if x.Type != dataset.Temporal {
			return fmt.Errorf("vizql: BIN BY %s needs temporal x", q.Spec.Unit)
		}
	case transform.KindBinCount, transform.KindBinUDF:
		if x.Type != dataset.Numerical {
			return fmt.Errorf("vizql: numeric binning needs numerical x")
		}
	case transform.KindNone:
		if y.Type != dataset.Numerical {
			return fmt.Errorf("vizql: raw pass-through needs numerical y")
		}
	}
	if (q.Spec.Agg == transform.AggSum || q.Spec.Agg == transform.AggAvg) && y.Type != dataset.Numerical {
		return fmt.Errorf("vizql: %s needs numerical y", q.Spec.Agg)
	}
	return nil
}

// Dedupe removes nodes whose rendered data is identical (same transformed
// series, chart type); different queries can collapse to the same chart
// (e.g. GROUP and BIN BY DAY on a date-granular column).
func Dedupe(nodes []*Node) []*Node {
	// Two nodes are duplicates iff their header bytes and body bytes
	// both agree, so the seen set keys on the (header hash, body hash)
	// pair — the same byte-equality-modulo-hash-collision test as
	// hashing the concatenation. The chart-type variants of one
	// transform share a *Result, and the per-bucket round-and-format
	// pass dominates fingerprinting — so the body is formatted and
	// hashed once per distinct Result and the scratch bytes discarded
	// (the arena never holds more than one body).
	type dedupeKey struct{ header, body uint64 }
	seen := make(map[dedupeKey]bool, len(nodes))
	bodies := make(map[*transform.Result]uint64, len(nodes))
	var arena []byte
	if ap := bodyArena.Swap(nil); ap != nil {
		arena = (*ap)[:0]
	}
	var out []*Node
	for _, n := range nodes {
		bh, ok := bodies[n.Res]
		if !ok {
			arena = appendFingerprintBody(arena[:0], n.Res)
			bh = maphash.Bytes(dedupeSeed, arena)
			bodies[n.Res] = bh
		}
		var hdr [64]byte
		key := dedupeKey{header: maphash.Bytes(dedupeSeed, appendFingerprintHeader(hdr[:0], n)), body: bh}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, n)
	}
	bodyArena.Store(&arena)
	return out
}

// bodyArena caches Dedupe's body arena between calls. A sync.Pool is
// the wrong shape here: the arena is checked out once per query, which
// spans GC cycles, so the pool's per-GC flushing would discard it and
// the multi-megabyte buffer would be regrown from scratch every call.
// An atomic holder survives GC; concurrent Dedupes fall back to a
// fresh arena and the last one back wins the slot.
var bodyArena atomic.Pointer[[]byte]

// dedupeSeed keys Dedupe's internal hashes. maphash is AES-accelerated
// — an order of magnitude faster than FNV's byte-at-a-time loop over
// the multi-kilobyte bodies — and dedupe only needs equality within one
// process, not the stable FNV digests dataFingerprint exposes.
var dedupeSeed = maphash.MakeSeed()

// FNV-64a, inlined: hashing byte-by-byte through hash.Hash64's Write
// costs an interface call per bucket on the dedupe hot path. Constants
// and update order match hash/fnv exactly.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAdd(h uint64, buf []byte) uint64 {
	for _, c := range buf {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// dataFingerprint hashes the complete transformed series so distinct
// charts can never collide on a sampled subset; values are rounded to 9
// significant digits so float drift between execution paths does not
// split identical charts. The stream is byte-identical to the
// historical fmt.Fprintf encoding ("%s|%s|%s|%d|" header, "%s=%.9g;"
// per bucket); TestDataFingerprintMatchesFmt pins the equivalence.
// Dedupe assembles the same stream from a cached body arena.
func dataFingerprint(n *Node) string {
	body := appendFingerprintBody(make([]byte, 0, n.Res.Len()*24), n.Res)
	return strconv.FormatUint(fnvAdd(headerHash(n), body), 16)
}

// headerHash seeds FNV-64a with the "%s|%s|%s|%d|" node header.
func headerHash(n *Node) uint64 {
	var hdr [64]byte
	return fnvAdd(fnvOffset64, appendFingerprintHeader(hdr[:0], n))
}

// appendFingerprintHeader appends the "%s|%s|%s|%d|" node header.
func appendFingerprintHeader(dst []byte, n *Node) []byte {
	dst = append(dst, n.Chart.String()...)
	dst = append(dst, '|')
	dst = append(dst, n.XName...)
	dst = append(dst, '|')
	dst = append(dst, n.YName...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(n.Res.Len()), 10)
	dst = append(dst, '|')
	return dst
}

// appendFingerprintBody appends the "%s=%.9g;" per-bucket stream.
func appendFingerprintBody(dst []byte, r *transform.Result) []byte {
	for i := 0; i < r.Len(); i++ {
		dst = append(dst, r.XLabels[i]...)
		dst = append(dst, '=')
		dst = strconv.AppendFloat(dst, roundSig(r.Y[i]), 'g', 9, 64)
		dst = append(dst, ';')
	}
	return dst
}

// pow10tab caches math.Pow(10, k) for every scale exponent roundSig can
// produce (|v| spans denormals to MaxFloat64, so 9−ceil(log10|v|) stays
// well inside ±350). The entries are computed by math.Pow itself, so
// the table lookup is bit-identical to the call it replaces.
var pow10tab = func() (t [701]float64) {
	for i := range t {
		t[i] = math.Pow(10, float64(i-350))
	}
	return
}()

func roundSig(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	// An integer with at most 9 digits is its own 9-significant-digit
	// rounding: |v·scale| ≤ 1e10 stays exactly representable for any
	// scale = 10^(9−d) the slow path could pick (even with log10 off by
	// one at a decade boundary), so Round is the identity and the final
	// division restores v exactly. CNT aggregates make this the common
	// case, and it skips the Log10 that dominates the dedupe profile.
	if v == math.Trunc(v) && v > -1e9 && v < 1e9 {
		return v
	}
	e := 9 - math.Ceil(math.Log10(math.Abs(v)))
	var scale float64
	if i := int(e); float64(i) == e && i >= -350 && i <= 350 {
		scale = pow10tab[i+350]
	} else {
		scale = math.Pow(10, e)
	}
	return math.Round(v*scale) / scale
}
