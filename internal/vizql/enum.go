package vizql

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/deepeye/deepeye/internal/chart"
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/stats"
	"github.com/deepeye/deepeye/internal/transform"
)

// DefaultUDF is the paper's example user-defined binning function:
// splitting a numerical column at 0 (e.g. early vs late departures,
// Fig. 5(d)).
var DefaultUDF = &transform.UDF{
	Name: "sign",
	Fn: func(v float64) (string, float64) {
		if v < 0 {
			return "< 0", 0
		}
		return ">= 0", 1
	},
}

// enumSpecs returns the transform space for one ordered column pair: do
// nothing, GROUP BY X, or one of the binnings (7 absolute calendar units,
// 3 periodic calendar units, default buckets, UDF), crossed with the
// aggregate choices. Raw pass-through carries no aggregate;
// grouped/binned transforms carry one of {SUM, AVG, CNT}. The resulting
// 40 combinations stay within the paper's 44-case bound (Fig. 3).
func enumSpecs() []transform.Spec {
	kinds := []transform.Spec{
		{Kind: transform.KindGroup},
		{Kind: transform.KindBinUnit, Unit: transform.ByMinute},
		{Kind: transform.KindBinUnit, Unit: transform.ByHour},
		{Kind: transform.KindBinUnit, Unit: transform.ByDay},
		{Kind: transform.KindBinUnit, Unit: transform.ByWeek},
		{Kind: transform.KindBinUnit, Unit: transform.ByMonth},
		{Kind: transform.KindBinUnit, Unit: transform.ByQuarter},
		{Kind: transform.KindBinUnit, Unit: transform.ByYear},
		{Kind: transform.KindBinUnit, Unit: transform.ByHourOfDay},
		{Kind: transform.KindBinUnit, Unit: transform.ByDayOfWeek},
		{Kind: transform.KindBinUnit, Unit: transform.ByMonthOfYear},
		{Kind: transform.KindBinCount, N: transform.DefaultBinCount},
		{Kind: transform.KindBinUDF, UDF: DefaultUDF},
	}
	aggs := []transform.Agg{transform.AggSum, transform.AggAvg, transform.AggCnt}
	specs := []transform.Spec{{Kind: transform.KindNone, Agg: transform.AggNone}}
	for _, k := range kinds {
		for _, a := range aggs {
			s := k
			s.Agg = a
			specs = append(specs, s)
		}
	}
	return specs
}

var sortAxes = []transform.SortAxis{transform.SortNone, transform.SortX, transform.SortY}

// EnumerateQueries generates the full two-column search space of Fig. 3
// for a table: every ordered column pair, every transform/aggregate
// combination, every sort axis, every chart type. This is the exhaustive
// "E" configuration of the paper's Fig. 12; most candidates are bad or
// even inexecutable (type mismatches) and are filtered downstream.
func EnumerateQueries(t *dataset.Table) []Query {
	var out []Query
	specs := enumSpecs()
	for i, x := range t.Columns {
		for j, y := range t.Columns {
			if i == j {
				continue
			}
			for _, spec := range specs {
				for _, sort := range sortAxes {
					for _, typ := range chart.AllTypes {
						out = append(out, Query{
							Viz: typ, X: x.Name, Y: y.Name, From: t.Name,
							Spec: spec, Order: sort,
						})
					}
				}
			}
		}
	}
	return out
}

// EnumerateOneColumnQueries generates the one-column extension (§II-B):
// group or bin a single column and count the tuples per bucket. The query
// selects the same column as X and Y with CNT.
func EnumerateOneColumnQueries(t *dataset.Table) []Query {
	var out []Query
	for _, c := range t.Columns {
		for _, spec := range enumSpecs() {
			if spec.Kind == transform.KindNone || spec.Agg != transform.AggCnt {
				continue // one-column charts are histogram-like: bucket + CNT
			}
			for _, sort := range sortAxes {
				for _, typ := range chart.AllTypes {
					out = append(out, Query{
						Viz: typ, X: c.Name, Y: c.Name, From: t.Name,
						Spec: spec, Order: sort,
					})
				}
			}
		}
	}
	return out
}

// ExecuteAll materializes a batch of queries, silently dropping the ones
// that cannot execute (type-incompatible transforms, empty output). A
// transform cache keyed on (X, Y, spec, sort) is shared across chart
// types, so the four chart variants of one transform cost a single pass
// over the data — the first optimization of §V-B.
func ExecuteAll(t *dataset.Table, queries []Query) []*Node {
	out, _ := ExecuteAllCtx(context.Background(), t, queries)
	return out
}

// ExecuteAllCtx is ExecuteAll with cancellation: the batch loop checks
// ctx between queries (each query is at most one pass over the data) and
// returns ctx.Err() as soon as cancellation is observed.
func ExecuteAllCtx(ctx context.Context, t *dataset.Table, queries []Query) ([]*Node, error) {
	type cacheKey struct {
		x, y, spec string
		sort       transform.SortAxis
	}
	type cacheVal struct {
		res       *transform.Result
		corr      float64
		trendR2   float64
		trendKind stats.TrendKind
		ok        bool
	}
	cache := make(map[cacheKey]*cacheVal)
	var out []*Node
	for _, q := range queries {
		// A cache miss costs a full pass over the data, so check before
		// every query to keep cancellation latency within one pass.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := cacheKey{q.X, q.Y, q.Spec.String(), q.Order}
		cv := cache[key]
		if cv == nil {
			cv = &cacheVal{}
			cache[key] = cv
			if n, err := ExecuteCtx(ctx, t, q); err == nil {
				cv.res = n.Res
				cv.corr = n.Corr
				cv.trendR2 = n.TrendR2
				cv.trendKind = n.TrendKind
				cv.ok = true
				// Reuse this first materialization directly.
				out = append(out, n)
				continue
			} else if cerr := ctx.Err(); cerr != nil {
				// Cancellation, not an inexecutable query: stop the batch.
				return nil, cerr
			}
		}
		if !cv.ok {
			continue
		}
		x := t.Column(q.X)
		y := t.Column(q.Y)
		n := &Node{
			Query: q, Chart: q.Viz,
			XName: q.X, YName: q.Y,
			XType: x.Type, YType: y.Type,
			InputRows: cv.res.InputRows,
			Res:       cv.res, // shared read-only with sibling chart types
			XOutType:  outType(x.Type, q.Spec.Kind),
			Corr:      cv.corr,
			TrendR2:   cv.trendR2,
			TrendKind: cv.trendKind,
		}
		fillFeatures(n)
		out = append(out, n)
	}
	return out, nil
}

// SearchSpaceTwoColumns is the Fig. 3 closed form for two columns:
// m(m−1) ordered pairs × 44 transform cases × 4 chart types × 3 sort
// choices = 528·m(m−1).
func SearchSpaceTwoColumns(m int) int {
	return 528 * m * (m - 1)
}

// SearchSpaceOneColumn is the paper's one-column extension count:
// m columns × 22 transform cases × 4 chart types × 3 sort choices = 264·m.
func SearchSpaceOneColumn(m int) int {
	return 264 * m
}

// SearchSpaceThreeColumns is the paper's (X, Y, Z) extension count:
// m³ column selections × 44 transforms × 4 aggregations × 4 sort choices
// = 704·m³.
func SearchSpaceThreeColumns(m int) int {
	return 704 * m * m * m
}

// SearchSpaceMultiY counts the multi-Y extension: one X column with z
// Y-columns (2 ≤ z ≤ m−1) compared on the same axes. Following §II-B with
// the combinatorics made explicit: choose X (m ways), choose the z Y
// columns from the remaining m−1, transform X (11 ways), aggregate each Y
// independently (4^z), pick a chart type (4), and sort by X′, one of the
// z Y′s, or nothing (z+2). Overflow-safe up to m ≈ 30 for int64.
func SearchSpaceMultiY(m int) int64 {
	var total int64
	for z := 2; z <= m-1; z++ {
		c := binomial(m-1, z)
		term := int64(m) * 11 * c * pow64(4, z) * 4 * int64(z+2)
		total += term
	}
	return total
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i) / int64(i)
	}
	return res
}

func pow64(base, exp int) int64 {
	r := int64(1)
	for i := 0; i < exp; i++ {
		r *= int64(base)
	}
	return r
}

// CountExecutable reports how many of the enumerated two-column queries
// actually execute on the table — a sanity measure used in tests and the
// search-space experiment (it is far below the Fig. 3 upper bound because
// most transform/type combinations are invalid).
func CountExecutable(t *dataset.Table) int {
	return len(ExecuteAll(t, EnumerateQueries(t)))
}

// ValidateQuery checks a query against a table without executing it:
// referenced columns exist and the transform is type-compatible.
func ValidateQuery(t *dataset.Table, q Query) error {
	x := t.Column(q.X)
	if x == nil {
		return fmt.Errorf("vizql: unknown column %q", q.X)
	}
	y := t.Column(q.Y)
	if y == nil {
		return fmt.Errorf("vizql: unknown column %q", q.Y)
	}
	switch q.Spec.Kind {
	case transform.KindBinUnit:
		if x.Type != dataset.Temporal {
			return fmt.Errorf("vizql: BIN BY %s needs temporal x", q.Spec.Unit)
		}
	case transform.KindBinCount, transform.KindBinUDF:
		if x.Type != dataset.Numerical {
			return fmt.Errorf("vizql: numeric binning needs numerical x")
		}
	case transform.KindNone:
		if y.Type != dataset.Numerical {
			return fmt.Errorf("vizql: raw pass-through needs numerical y")
		}
	}
	if (q.Spec.Agg == transform.AggSum || q.Spec.Agg == transform.AggAvg) && y.Type != dataset.Numerical {
		return fmt.Errorf("vizql: %s needs numerical y", q.Spec.Agg)
	}
	return nil
}

// Dedupe removes nodes whose rendered data is identical (same transformed
// series, chart type); different queries can collapse to the same chart
// (e.g. GROUP and BIN BY DAY on a date-granular column).
func Dedupe(nodes []*Node) []*Node {
	seen := make(map[string]bool, len(nodes))
	var out []*Node
	for _, n := range nodes {
		key := dataFingerprint(n)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, n)
	}
	return out
}

func dataFingerprint(n *Node) string {
	// Hash the complete transformed series so distinct charts can never
	// collide on a sampled subset; values are rounded to 9 significant
	// digits so float drift between execution paths does not split
	// identical charts.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|", n.Chart, n.XName, n.YName, n.Res.Len())
	for i := 0; i < n.Res.Len(); i++ {
		fmt.Fprintf(h, "%s=%.9g;", n.Res.XLabels[i], roundSig(n.Res.Y[i]))
	}
	return fmt.Sprintf("%x", h.Sum64())
}

func roundSig(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	scale := math.Pow(10, 9-math.Ceil(math.Log10(math.Abs(v))))
	return math.Round(v*scale) / scale
}
