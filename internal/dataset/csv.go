package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// FromCSV reads a table from CSV data with a header row, inferring the
// type of every column. The table name is informational only.
func FromCSV(name string, r io.Reader) (*Table, error) {
	return FromCSVWithTypes(name, r, nil)
}

// ReadLimits bounds CSV ingestion so a hostile payload cannot balloon
// the parsed representation far past the raw body cap: MaxRows caps
// data rows (header excluded), MaxCellBytes caps a single cell's size.
// Zero fields are unlimited.
type ReadLimits struct {
	MaxRows      int
	MaxCellBytes int
}

// LimitError reports which ingestion limit a payload hit; servers map
// it to 413 echoing the limit.
type LimitError struct {
	What  string // "rows" or "cell-bytes"
	Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("dataset: input exceeds %s limit of %d", e.What, e.Limit)
}

// checkRec applies the limits to one data record (row index is the
// 0-based count of data rows read so far, this record excluded).
func (lim ReadLimits) checkRec(rowsRead int, rec []string) error {
	if lim.MaxRows > 0 && rowsRead >= lim.MaxRows {
		return &LimitError{What: "rows", Limit: lim.MaxRows}
	}
	if lim.MaxCellBytes > 0 {
		for _, cell := range rec {
			if len(cell) > lim.MaxCellBytes {
				return &LimitError{What: "cell-bytes", Limit: lim.MaxCellBytes}
			}
		}
	}
	return nil
}

// ReadRows reads raw CSV records (ragged tolerated) under the limits —
// the ingestion path for registry appends. When header is true the
// first record is skipped and does not count against MaxRows.
func ReadRows(rd io.Reader, header bool, lim ReadLimits) ([][]string, error) {
	cr := csv.NewReader(rd)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading append rows: %w", err)
		}
		if header {
			header = false
			continue
		}
		if err := lim.checkRec(len(rows), rec); err != nil {
			return nil, err
		}
		rows = append(rows, rec)
	}
	return rows, nil
}

// FromCSVWithTypes reads a table from CSV data, forcing the types of the
// named columns instead of inferring them (cells that fail to parse under
// a forced type become null). Columns absent from overrides are inferred
// as usual.
//
// Records stream through one at a time into per-column builders rather
// than materializing a [][]string of the whole file first, so peak
// memory is the column storage alone (roughly half the old two-copy
// peak on large uploads). Rows shorter than the header pad with nulls;
// rows longer than the header are truncated and counted on the
// resulting table's RaggedRows instead of being dropped silently.
func FromCSVWithTypes(name string, r io.Reader, overrides map[string]ColType) (*Table, error) {
	return FromCSVLimited(name, r, overrides, ReadLimits{})
}

// FromCSVLimited is FromCSVWithTypes with ingestion limits applied per
// record as it streams; a violation aborts the parse with a LimitError
// before the oversized payload is materialized.
func FromCSVLimited(name string, r io.Reader, overrides map[string]ColType, lim ReadLimits) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // tolerate ragged rows
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("dataset: csv %q has no header row", name)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	raws := make([][]string, len(header))
	ragged := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		if err := lim.checkRec(len(raws[0]), rec); err != nil {
			return nil, err
		}
		if len(rec) > len(header) {
			ragged++
		}
		for j := range raws {
			if j < len(rec) {
				raws[j] = append(raws[j], rec[j])
			} else {
				raws[j] = append(raws[j], "")
			}
		}
	}
	cols := make([]*Column, len(header))
	for j, colName := range header {
		colName = strings.TrimSpace(colName)
		if colName == "" {
			colName = fmt.Sprintf("col%d", j)
		}
		if typ, ok := overrides[colName]; ok {
			cols[j] = ForceType(colName, raws[j], typ)
		} else {
			cols[j] = InferColumn(colName, raws[j])
		}
	}
	// Deduplicate repeated header names so Table construction succeeds.
	seen := make(map[string]int)
	for _, c := range cols {
		if k := seen[c.Name]; k > 0 {
			c.Name = fmt.Sprintf("%s_%d", c.Name, k)
		}
		seen[c.Name]++
	}
	t, err := New(name, cols)
	if err != nil {
		return nil, err
	}
	t.RaggedRows = ragged
	return t, nil
}

// FromCSVFile reads a table from a CSV file on disk; the file's base name
// becomes the table name.
func FromCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return FromCSV(path, f)
}

// FromCSVString is a convenience wrapper over FromCSV for in-memory data.
func FromCSVString(name, data string) (*Table, error) {
	return FromCSV(name, strings.NewReader(data))
}

// WriteCSV serializes the table back to CSV (header + raw cells).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		header[j] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	row := make([]string, len(t.Columns))
	for i := 0; i < t.nRows; i++ {
		for j, c := range t.Columns {
			if c.IsNull(i) {
				row[j] = ""
			} else {
				row[j] = c.RawAt(i)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
