package dataset

import (
	"fmt"
	"strings"
	"testing"
)

// TestDictEmptyStringVsNull pins the dictionary encoding's distinction
// between an empty string cell and a null cell: both store "" as the
// raw text, but only the null bitmap decides cell nullness, statistics,
// and the fingerprint stream.
func TestDictEmptyStringVsNull(t *testing.T) {
	withEmpty := RebuildColumn("c", Categorical, []string{"", "x"}, []bool{false, false})
	withNull := RebuildColumn("c", Categorical, []string{"", "x"}, []bool{true, false})

	if withEmpty.IsNull(0) {
		t.Error("explicit empty string marked null")
	}
	if !withNull.IsNull(0) {
		t.Error("null cell not marked null")
	}
	if got := withEmpty.RawAt(0); got != "" {
		t.Errorf("empty-string raw = %q", got)
	}

	se, sn := withEmpty.Stats(), withNull.Stats()
	if se.N != 2 || se.Distinct != 2 || se.HasNull {
		t.Errorf("empty-string stats = %+v, want N=2 Distinct=2 HasNull=false", se)
	}
	if sn.N != 1 || sn.Distinct != 1 || !sn.HasNull {
		t.Errorf("null stats = %+v, want N=1 Distinct=1 HasNull=true", sn)
	}

	te, err := New("t", []*Column{withEmpty})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := New("t", []*Column{withNull})
	if err != nil {
		t.Fatal(err)
	}
	if te.Fingerprint() == tn.Fingerprint() {
		t.Error("empty-string and null tables share a fingerprint")
	}
}

// TestDictLargeCardinality drives a column's dictionary well past the
// registry's 4096-entry exact-tracking limit: column-local statistics
// stay exact at any dictionary size (the scratch-bitmap distinct count
// is sized by the dictionary, not capped), and every code still
// round-trips to its original raw string.
func TestDictLargeCardinality(t *testing.T) {
	const n = 5000
	raw := make([]string, n)
	for i := range raw {
		raw[i] = fmt.Sprintf("v%04d", i)
	}
	// Repeat the values once so distinct < rows.
	c := ForceType("c", append(append([]string{}, raw...), raw...), Categorical)
	if c.Len() != 2*n {
		t.Fatalf("len = %d", c.Len())
	}
	if c.DictLen() != n {
		t.Errorf("dict holds %d entries, want %d", c.DictLen(), n)
	}
	s := c.Stats()
	if s.N != 2*n || s.Distinct != n {
		t.Errorf("stats = %+v, want N=%d Distinct=%d", s, 2*n, n)
	}
	for _, i := range []int{0, n - 1, n, 2*n - 1} {
		if got, want := c.RawAt(i), raw[i%n]; got != want {
			t.Errorf("RawAt(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestDictFingerprintBuildPathIndependence pins that the rolling
// fingerprint depends only on cell content, not on how the dictionary
// was built: a table loaded from CSV, a table rebuilt from raw slices,
// and a table grown cell by cell through AppendCell must agree.
func TestDictFingerprintBuildPathIndependence(t *testing.T) {
	csv := "city,pop\nBeijing,21\nShanghai,24\nBeijing,\n"
	fromCSV, err := FromCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}

	var rebuilt []*Column
	for _, c := range fromCSV.Columns {
		rebuilt = append(rebuilt, RebuildColumn(c.Name, c.Type, c.Raws(), c.Nulls()))
	}
	fromRaw, err := New("t", rebuilt)
	if err != nil {
		t.Fatal(err)
	}

	var grown []*Column
	for _, c := range fromCSV.Columns {
		g := ForceType(c.Name, nil, c.Type)
		for i := 0; i < c.Len(); i++ {
			g.AppendCell(c.RawAt(i))
		}
		grown = append(grown, g)
	}
	fromAppend, err := New("t", grown)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := fromCSV.Fingerprint(), fromRaw.Fingerprint(); a != b {
		t.Errorf("CSV-built %s != raw-built %s", a, b)
	}
	if a, b := fromCSV.Fingerprint(), fromAppend.Fingerprint(); a != b {
		t.Errorf("CSV-built %s != append-built %s", a, b)
	}
}
