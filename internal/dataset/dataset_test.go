package dataset

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestInferColumnNumerical(t *testing.T) {
	c := InferColumn("delay", []string{"-4", "0", "11", "3.5", "1,200", "$7", "85%"})
	if c.Type != Numerical {
		t.Fatalf("type = %v, want Numerical", c.Type)
	}
	want := []float64{-4, 0, 11, 3.5, 1200, 7, 85}
	for i, w := range want {
		if c.IsNull(i) {
			t.Fatalf("cell %d unexpectedly null", i)
		}
		if c.NumAt(i) != w {
			t.Errorf("NumAt(%d) = %v, want %v", i, c.NumAt(i), w)
		}
	}
}

func TestInferColumnTemporal(t *testing.T) {
	c := InferColumn("scheduled", []string{"2015-01-01 00:05", "2015-01-01 04:00", "2015-06-13 06:13"})
	if c.Type != Temporal {
		t.Fatalf("type = %v, want Temporal", c.Type)
	}
	if c.TimeAt(0).Hour() != 0 || c.TimeAt(0).Minute() != 5 {
		t.Errorf("TimeAt(0) = %v, want 00:05", c.TimeAt(0))
	}
}

func TestInferColumnCategorical(t *testing.T) {
	c := InferColumn("carrier", []string{"UA", "AA", "MQ", "OO", "UA"})
	if c.Type != Categorical {
		t.Fatalf("type = %v, want Categorical", c.Type)
	}
}

func TestInferColumnMixedMajorityWins(t *testing.T) {
	// 19 numbers and a single stray label: still numerical (>=90%), with
	// the stray marked null.
	raw := make([]string, 20)
	for i := range raw {
		raw[i] = strconv.Itoa(i)
	}
	raw[7] = "oops"
	c := InferColumn("x", raw)
	if c.Type != Numerical {
		t.Fatalf("type = %v, want Numerical", c.Type)
	}
	if !c.IsNull(7) {
		t.Error("stray cell should be null")
	}
}

func TestInferColumnNullTokens(t *testing.T) {
	c := InferColumn("x", []string{"1", "NA", "2", "", "null", "3"})
	if c.Type != Numerical {
		t.Fatalf("type = %v, want Numerical", c.Type)
	}
	s := c.Stats()
	if s.N != 3 || !s.HasNull {
		t.Errorf("stats = %+v, want N=3 HasNull", s)
	}
}

func TestStats(t *testing.T) {
	c := NumColumn("x", []float64{5, 1, 3, 1, 5})
	s := c.Stats()
	if s.N != 5 || s.Distinct != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("stats = %+v", s)
	}
	if got, want := s.Ratio, 3.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ratio = %v, want %v", got, want)
	}
}

func TestStatsTemporalMinMax(t *testing.T) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 := time.Date(2015, 12, 31, 0, 0, 0, 0, time.UTC)
	c := TimeColumn("d", []time.Time{t1, t0})
	s := c.Stats()
	if s.Min != float64(t0.Unix()) || s.Max != float64(t1.Unix()) {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestStatsCategoricalNoMinMax(t *testing.T) {
	c := CatColumn("c", []string{"b", "a"})
	s := c.Stats()
	if s.Min != 0 || s.Max != 0 {
		t.Errorf("categorical min/max should be zero, got %v/%v", s.Min, s.Max)
	}
}

func TestNewRejectsRaggedColumns(t *testing.T) {
	_, err := New("t", []*Column{
		NumColumn("a", []float64{1, 2}),
		NumColumn("b", []float64{1}),
	})
	if err == nil {
		t.Fatal("want error for mismatched column lengths")
	}
}

func TestNewRejectsDuplicateNames(t *testing.T) {
	_, err := New("t", []*Column{
		NumColumn("a", []float64{1}),
		NumColumn("a", []float64{2}),
	})
	if err == nil {
		t.Fatal("want error for duplicate column names")
	}
}

func TestTableLookup(t *testing.T) {
	tab, err := New("t", []*Column{
		NumColumn("a", []float64{1, 2, 3}),
		CatColumn("b", []string{"x", "y", "z"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 2 {
		t.Errorf("dims = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Column("b") == nil || tab.Column("b").Type != Categorical {
		t.Error("lookup b failed")
	}
	if tab.Column("missing") != nil || tab.ColumnIndex("missing") != -1 {
		t.Error("missing column should be nil/-1")
	}
	if tab.ColumnIndex("a") != 0 {
		t.Error("index a != 0")
	}
}

func TestDistinctValuesSorted(t *testing.T) {
	c := CatColumn("c", []string{"b", "a", "b", "", "c"})
	got := c.DistinctValues()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct = %v, want %v", got, want)
		}
	}
}

func TestNumericValuesSkipsNulls(t *testing.T) {
	c := NumColumn("x", []float64{1, math.NaN(), 3})
	vals := c.NumericValues()
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Errorf("vals = %v", vals)
	}
}

func TestFromCSVString(t *testing.T) {
	tab, err := FromCSVString("flights", "carrier,delay,scheduled\nUA,-4,2015-01-01 00:05\nAA,0,2015-01-01 04:00\nMQ,7,2015-01-01 06:13\n")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Column("carrier").Type != Categorical {
		t.Error("carrier should be categorical")
	}
	if tab.Column("delay").Type != Numerical {
		t.Error("delay should be numerical")
	}
	if tab.Column("scheduled").Type != Temporal {
		t.Error("scheduled should be temporal")
	}
}

func TestFromCSVRaggedRows(t *testing.T) {
	tab, err := FromCSVString("t", "a,b\n1,2\n3\n")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Column("b").IsNull(1) {
		t.Error("short row should pad with null")
	}
}

func TestFromCSVDuplicateHeaders(t *testing.T) {
	tab, err := FromCSVString("t", "a,a\n1,2\n")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("a") == nil || tab.Column("a_1") == nil {
		t.Errorf("columns = %v, %v", tab.Columns[0].Name, tab.Columns[1].Name)
	}
}

func TestFromCSVEmpty(t *testing.T) {
	if _, err := FromCSVString("t", ""); err == nil {
		t.Fatal("want error for empty csv")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "a,b\n1,x\n2,y\n"
	tab, err := FromCSVString("t", in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != in {
		t.Errorf("round trip = %q, want %q", buf.String(), in)
	}
}

func TestParseTimeLayouts(t *testing.T) {
	cases := []string{"2015-03-04", "2015/03/04", "03/04/2015", "2015-03-04 10:11", "2015-03", "Jan 2015", "10:11:12"}
	for _, s := range cases {
		if _, ok := ParseTime(s); !ok {
			t.Errorf("ParseTime(%q) failed", s)
		}
	}
	if _, ok := ParseTime("not a date"); ok {
		t.Error("ParseTime accepted garbage")
	}
}

func TestForceType(t *testing.T) {
	c := ForceType("x", []string{"1", "two", "3"}, Numerical)
	if c.Type != Numerical || !c.IsNull(1) || c.NumAt(2) != 3 {
		t.Errorf("force type: %+v", c)
	}
}

// Property: stats invariants hold for arbitrary numeric data.
func TestStatsInvariantsQuick(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		c := NumColumn("x", clean)
		s := c.Stats()
		if s.N != len(clean) {
			return false
		}
		if s.Distinct > s.N {
			return false
		}
		if s.N > 0 && (s.Ratio <= 0 || s.Ratio > 1) {
			return false
		}
		if s.N > 0 && s.Min > s.Max {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip preserves dimensions and cell values for simple
// alphanumeric content.
func TestCSVRoundTripQuick(t *testing.T) {
	f := func(n uint8) bool {
		rows := int(n%20) + 1
		var sb strings.Builder
		sb.WriteString("a,b\n")
		for i := 0; i < rows; i++ {
			sb.WriteString(strconv.Itoa(i))
			sb.WriteString(",v")
			sb.WriteString(strconv.Itoa(i * 3))
			sb.WriteString("\n")
		}
		tab, err := FromCSVString("t", sb.String())
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			return false
		}
		return buf.String() == sb.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfile(t *testing.T) {
	tab, err := FromCSVString("t", "city,pop,founded\nA,10,2001-01-01\nB,20,2002-01-01\nA,30,2003-01-01\n")
	if err != nil {
		t.Fatal(err)
	}
	profiles := tab.Profile(2)
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	city := profiles[0]
	if city.Type != Categorical || city.Distinct != 2 || city.TopValues[0].Value != "A" || city.TopValues[0].Count != 2 {
		t.Errorf("city profile = %+v", city)
	}
	pop := profiles[1]
	if pop.Type != Numerical || pop.Min != 10 || pop.Max != 30 {
		t.Errorf("pop profile = %+v", pop)
	}
	out := FormatProfile(profiles)
	if !strings.Contains(out, "city") || !strings.Contains(out, "A×2") {
		t.Errorf("formatted profile:\n%s", out)
	}
}

func TestProfileTopKCap(t *testing.T) {
	c := CatColumn("c", []string{"a", "b", "c", "d", "e", "f"})
	tab, err := New("t", []*Column{c})
	if err != nil {
		t.Fatal(err)
	}
	p := tab.Profile(3)
	if len(p[0].TopValues) != 3 {
		t.Errorf("top values = %d, want capped 3", len(p[0].TopValues))
	}
}

func TestFromCSVWithTypes(t *testing.T) {
	csv := "code,value\n2015,10\n2016,20\n2017,30\n"
	// "code" would infer as numerical; force categorical.
	tab, err := FromCSVWithTypes("t", strings.NewReader(csv), map[string]ColType{"code": Categorical})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("code").Type != Categorical {
		t.Errorf("code type = %v", tab.Column("code").Type)
	}
	if tab.Column("value").Type != Numerical {
		t.Errorf("value type = %v (should still be inferred)", tab.Column("value").Type)
	}
}

func TestFromJSON(t *testing.T) {
	data := `[
		{"city": "Springfield", "pop": 30000, "founded": "1850-05-01"},
		{"city": "Shelbyville", "pop": 21000, "founded": "1855-02-01"},
		{"city": "Ogdenville", "pop": 12000}
	]`
	tab, err := FromJSON("cities", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Column("pop").Type != Numerical {
		t.Error("pop should be numerical")
	}
	if tab.Column("founded").Type != Temporal {
		t.Error("founded should be temporal")
	}
	if !tab.Column("founded").IsNull(2) {
		t.Error("missing key should be null")
	}
}

func TestFromJSONErrors(t *testing.T) {
	if _, err := FromJSON("t", strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := FromJSON("t", strings.NewReader("[]")); err == nil {
		t.Error("empty array should fail")
	}
	if _, err := FromJSON("t", strings.NewReader(`[{"a": {"nested": 1}}]`)); err == nil {
		t.Error("nested object should fail")
	}
	if _, err := FromJSON("t", strings.NewReader(`[{"b": true}]`)); err != nil {
		t.Errorf("bool scalar should be fine: %v", err)
	}
}
