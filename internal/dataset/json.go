package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// FromJSON reads a table from a JSON array of flat objects (the shape most
// REST APIs and document exports produce):
//
//	[{"city": "Springfield", "pop": 30000}, {"city": "Shelbyville", ...}]
//
// The schema is the union of keys across objects; missing keys become
// nulls; nested objects/arrays are rejected. Column types are inferred
// exactly as for CSV input.
func FromJSON(name string, r io.Reader) (*Table, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var rows []map[string]any
	if err := dec.Decode(&rows); err != nil {
		return nil, fmt.Errorf("dataset: decoding json: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: json %q has no rows", name)
	}
	keySet := map[string]struct{}{}
	for _, row := range rows {
		for k := range row {
			keySet[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	cols := make([]*Column, 0, len(keys))
	for _, k := range keys {
		raw := make([]string, len(rows))
		for i, row := range rows {
			v, ok := row[k]
			if !ok || v == nil {
				continue // stays "", treated as null
			}
			s, err := scalarString(v)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d key %q: %w", i, k, err)
			}
			raw[i] = s
		}
		cols = append(cols, InferColumn(k, raw))
	}
	return New(name, cols)
}

// scalarString renders a JSON scalar as a cell string.
func scalarString(v any) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case json.Number:
		return x.String(), nil
	case bool:
		return strconv.FormatBool(x), nil
	default:
		return "", fmt.Errorf("nested value of type %T not supported", v)
	}
}
