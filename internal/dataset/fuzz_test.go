package dataset

import (
	"bytes"
	"testing"
)

// FuzzFromCSV checks that arbitrary bytes never panic the loader, and
// that any table it accepts has consistent dimensions and can be written
// back out.
func FuzzFromCSV(f *testing.F) {
	seeds := []string{
		"a,b\n1,2\n",
		"carrier,delay,scheduled\nUA,-4,2015-01-01 00:05\n",
		"x\n\n\n",
		"a,a,a\n1,2\n3,4,5,6\n",
		"\"quoted,comma\",b\nv,w\n",
		"a;b\n1;2\n",
		"héllo,wörld\n1,2\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := FromCSV("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, c := range tab.Columns {
			if c.Len() != tab.NumRows() {
				t.Fatalf("column %q dimensions inconsistent", c.Name)
			}
			s := c.Stats()
			if s.Distinct > s.N {
				t.Fatalf("column %q: distinct %d > n %d", c.Name, s.Distinct, s.N)
			}
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
	})
}

// FuzzInferColumn checks the type sniffer on arbitrary cell content.
func FuzzInferColumn(f *testing.F) {
	f.Add("1", "2", "3")
	f.Add("2015-01-01", "2015-06-01", "x")
	f.Add("", "NA", "null")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		col := InferColumn("f", []string{a, b, c})
		switch col.Type {
		case Numerical:
			if len(col.NumsSlice()) != 3 {
				t.Fatal("numerical column missing values")
			}
		case Temporal:
			if len(col.SecsSlice()) != 3 {
				t.Fatal("temporal column missing values")
			}
		}
		col.Stats() // must not panic
	})
}
