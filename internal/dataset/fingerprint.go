package dataset

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a content fingerprint of the table: a 128-bit
// FNV-1a hash (hex) over the schema (column names and types), the row
// count, and every cell value. Every cell is hashed — the fingerprint
// keys the result/statistics caches end to end, so any single-cell edit
// must change it; a pass of FNV over bytes the loader already touched
// is cheap next to the CSV/JSON parse that produced the table. Two
// loads of byte-identical content produce the same fingerprint
// regardless of the table's Name, so re-uploads of the same dataset hit
// the result cache while a same-named table with different content
// misses it.
//
// The fingerprint is computed once per Table and memoized; Tables are
// immutable after construction, so it never goes stale. Safe for
// concurrent use.
func (t *Table) Fingerprint() string {
	t.fpOnce.Do(func() { t.fp = fingerprint(t) })
	return t.fp
}

func fingerprint(t *Table) string {
	h := fnv.New128a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(t.nRows)
	writeInt(len(t.Columns))
	for _, c := range t.Columns {
		// Every variable-length field is length-prefixed so cell
		// boundaries are unambiguous: ["a\x00","b"] and ["a","\x00b"]
		// must not collide. Nulls get a sentinel no length can equal.
		writeInt(len(c.Name))
		h.Write([]byte(c.Name))
		h.Write([]byte{byte(c.Type)})
		for i, raw := range c.Raw {
			if c.Null[i] {
				writeInt(-1)
				continue
			}
			writeInt(len(raw))
			h.Write([]byte(raw))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
