package dataset

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
)

// Fingerprint returns a content fingerprint of the table: a 128-bit
// FNV-1a hash (hex) over the schema (column count, names, types)
// followed by every cell value in row-major order. Every cell is
// hashed — the fingerprint keys the result/statistics caches end to
// end, so any single-cell edit must change it; a pass of FNV over
// bytes the loader already touched is cheap next to the CSV/JSON parse
// that produced the table. Two loads of byte-identical content produce
// the same fingerprint regardless of the table's Name, so re-uploads
// of the same dataset hit the result cache while a same-named table
// with different content misses it.
//
// The stream is row-major so it is append-extendable: a live dataset
// (internal/registry) keeps a rolling Hasher and extends it per
// appended cell, and the rolled digest equals a full recompute on the
// grown table — the registry's property tests assert exactly that.
// The row count is not hashed explicitly; the column count is, and
// every cell is length-prefixed, so the stream parses unambiguously
// and the row count is implied by its length.
//
// The fingerprint is computed once per Table and memoized; Tables are
// immutable after construction, so it never goes stale. Safe for
// concurrent use.
func (t *Table) Fingerprint() string {
	t.fpOnce.Do(func() { t.fp = fingerprint(t) })
	return t.fp
}

// SetFingerprint injects a precomputed fingerprint (a live dataset's
// rolling digest) into the table's memo, skipping the full recompute.
// Like SetStats it is a no-op when the fingerprint was already
// computed, so an injected value can never overwrite a computed one.
// Callers must only inject digests produced by a Hasher fed this
// table's exact schema and cells; the registry's differential tests
// verify that equivalence.
func (t *Table) SetFingerprint(fp string) {
	t.fpOnce.Do(func() { t.fp = fp })
}

func fingerprint(t *Table) string {
	h := NewHasher(t.Columns)
	for i := 0; i < t.nRows; i++ {
		for _, c := range t.Columns {
			h.WriteCell(c.RawAt(i), c.IsNull(i))
		}
	}
	return h.Sum()
}

// Hasher is the rolling form of Fingerprint: construct it over a
// schema, feed it every cell in row-major order, and Sum at any row
// boundary. Sum does not disturb the rolling state, so a live dataset
// can stamp an epoch fingerprint after each append and keep extending
// the same Hasher. Not safe for concurrent use; callers serialize
// (the registry feeds it under the dataset lock).
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher starts a fingerprint stream over the schema: column count,
// then each column's length-prefixed name and type byte.
func NewHasher(cols []*Column) *Hasher {
	fh := &Hasher{h: fnv.New128a()}
	fh.writeInt(len(cols))
	for _, c := range cols {
		fh.writeInt(len(c.Name))
		fh.h.Write([]byte(c.Name))
		fh.h.Write([]byte{byte(c.Type)})
	}
	return fh
}

// WriteCell extends the stream with one cell. Every variable-length
// field is length-prefixed so cell boundaries are unambiguous:
// ["a\x00","b"] and ["a","\x00b"] must not collide. Nulls get a
// sentinel no length can equal.
func (fh *Hasher) WriteCell(raw string, null bool) {
	if null {
		fh.writeInt(-1)
		return
	}
	fh.writeInt(len(raw))
	fh.h.Write([]byte(raw))
}

// Sum returns the hex digest of the stream so far without resetting
// the rolling state.
func (fh *Hasher) Sum() string {
	return fmt.Sprintf("%x", fh.h.Sum(nil))
}

// Clone returns an independent copy of the rolling state, so a caller
// can preview the digest a batch of cells would produce — the WAL
// journals an append's post-state fingerprint before the append is
// applied — without disturbing the live stream. The fnv digests
// implement encoding.BinaryMarshaler, so the copy is exact.
func (fh *Hasher) Clone() *Hasher {
	m, err := fh.h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		// Unreachable: fnv's MarshalBinary cannot fail.
		panic("dataset: marshaling fingerprint state: " + err.Error())
	}
	c := &Hasher{h: fnv.New128a()}
	if err := c.h.(encoding.BinaryUnmarshaler).UnmarshalBinary(m); err != nil {
		panic("dataset: unmarshaling fingerprint state: " + err.Error())
	}
	return c
}

func (fh *Hasher) writeInt(v int) {
	binary.LittleEndian.PutUint64(fh.buf[:], uint64(v))
	fh.h.Write(fh.buf[:])
}
