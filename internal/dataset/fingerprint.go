package dataset

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// fingerprintExactRows is the row count up to which the fingerprint
// hashes every cell; above it, fingerprintSampleRows evenly spaced rows
// (always including the first and last) are hashed per column instead,
// keeping fingerprinting O(columns) on huge tables.
const (
	fingerprintExactRows  = 4096
	fingerprintSampleRows = 256
)

// Fingerprint returns a fast content fingerprint of the table: a
// 128-bit FNV-1a hash (hex) over the schema (column names and types),
// the row count, and the cell values — every cell for tables up to
// fingerprintExactRows rows, a deterministic evenly spaced sample above
// that. Two loads of byte-identical content produce the same
// fingerprint regardless of the table's Name, so re-uploads of the same
// dataset hit the result cache while a same-named table with different
// content misses it.
//
// The fingerprint is computed once per Table and memoized; Tables are
// immutable after construction, so it never goes stale. Safe for
// concurrent use.
func (t *Table) Fingerprint() string {
	t.fpOnce.Do(func() { t.fp = fingerprint(t) })
	return t.fp
}

func fingerprint(t *Table) string {
	h := fnv.New128a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(t.nRows)
	writeInt(len(t.Columns))
	for _, c := range t.Columns {
		h.Write([]byte(c.Name))
		h.Write([]byte{0, byte(c.Type)})
		for _, i := range sampleIndices(len(c.Raw)) {
			if c.Null[i] {
				h.Write([]byte{1})
				continue
			}
			h.Write([]byte(c.Raw[i]))
			h.Write([]byte{0})
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// sampleIndices returns the row indices the fingerprint hashes: all of
// them for small tables, fingerprintSampleRows evenly spaced ones
// (first and last included) otherwise. The stride is deterministic so
// identical content always samples identical cells.
func sampleIndices(n int) []int {
	if n <= fingerprintExactRows {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, fingerprintSampleRows)
	step := float64(n-1) / float64(fingerprintSampleRows-1)
	for i := range out {
		out[i] = int(float64(i) * step)
	}
	out[len(out)-1] = n - 1
	return out
}
