package dataset

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func fpTable(t *testing.T, name, csv string) *Table {
	t.Helper()
	tab, err := FromCSV(name, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFingerprintContentKeyed(t *testing.T) {
	csv := "city,pop\nBeijing,21\nShanghai,24\n"
	a := fpTable(t, "cities", csv)
	b := fpTable(t, "renamed", csv) // same content, different table name
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical content under different names fingerprints differ:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
	// Memoized: repeated calls return the identical string.
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	base := fpTable(t, "t", "city,pop\nBeijing,21\nShanghai,24\n")
	cases := map[string]string{
		"different value":  "city,pop\nBeijing,21\nShanghai,25\n",
		"different column": "city,size\nBeijing,21\nShanghai,24\n",
		"extra row":        "city,pop\nBeijing,21\nShanghai,24\nShenzhen,13\n",
		"null cell":        "city,pop\nBeijing,21\nShanghai,\n",
	}
	for what, csv := range cases {
		other := fpTable(t, "t", csv) // same name, different content
		if other.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint collision with base table", what)
		}
	}
}

func TestFingerprintLargeTableSingleCellEdit(t *testing.T) {
	// Every cell is hashed, so editing any one row of a large table —
	// including one deep in the middle — must change the fingerprint.
	// (A sampled fingerprint would miss this and serve the previous
	// table's cached results.)
	const rows = 10000
	build := func(editRow int, val string) *Table {
		var sb strings.Builder
		sb.WriteString("id,v\n")
		for i := 0; i < rows; i++ {
			sb.WriteString(strconv.Itoa(i))
			sb.WriteString(",")
			if i == editRow {
				sb.WriteString(val)
			} else {
				sb.WriteString("1")
			}
			sb.WriteString("\n")
		}
		return fpTable(t, "big", sb.String())
	}
	base := build(-1, "")
	for _, editRow := range []int{0, 5000, rows - 1} {
		if build(editRow, "2").Fingerprint() == base.Fingerprint() {
			t.Errorf("fingerprint missed a single-cell edit at row %d", editRow)
		}
	}
}

func TestFingerprintCellBoundaries(t *testing.T) {
	// Cells are length-prefixed, so values containing NUL bytes cannot
	// alias across cell boundaries: ["a\x00","b"] vs ["a","\x00b"].
	build := func(v1, v2 string) *Table {
		c := RebuildColumn("c", Categorical, []string{v1, v2}, []bool{false, false})
		tab, err := New("t", []*Column{c})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a, b := build("a\x00", "b"), build("a", "\x00b")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprint collision across cell boundaries with embedded NUL")
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	tab := fpTable(t, "t", "a,b\n1,2\n3,4\n")
	var wg sync.WaitGroup
	got := make([]string, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = tab.Fingerprint()
		}(i)
	}
	wg.Wait()
	for _, fp := range got {
		if fp != got[0] {
			t.Fatal("concurrent fingerprints disagree")
		}
	}
}

func TestSetStatsDoesNotOverride(t *testing.T) {
	c := NumColumn("v", []float64{1, 2, 3})
	want := c.Stats() // computed first
	c.SetStats(Stats{N: 99})
	if got := c.Stats(); got != want {
		t.Errorf("SetStats overwrote computed stats: %+v", got)
	}
	// And the injection path: set before any computation.
	c2 := NumColumn("v", []float64{1, 2, 3})
	c2.SetStats(Stats{N: 42, Distinct: 7})
	if got := c2.Stats(); got.N != 42 || got.Distinct != 7 {
		t.Errorf("injected stats not returned: %+v", got)
	}
}
