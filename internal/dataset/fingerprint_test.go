package dataset

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func fpTable(t *testing.T, name, csv string) *Table {
	t.Helper()
	tab, err := FromCSV(name, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFingerprintContentKeyed(t *testing.T) {
	csv := "city,pop\nBeijing,21\nShanghai,24\n"
	a := fpTable(t, "cities", csv)
	b := fpTable(t, "renamed", csv) // same content, different table name
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical content under different names fingerprints differ:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
	// Memoized: repeated calls return the identical string.
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	base := fpTable(t, "t", "city,pop\nBeijing,21\nShanghai,24\n")
	cases := map[string]string{
		"different value":  "city,pop\nBeijing,21\nShanghai,25\n",
		"different column": "city,size\nBeijing,21\nShanghai,24\n",
		"extra row":        "city,pop\nBeijing,21\nShanghai,24\nShenzhen,13\n",
		"null cell":        "city,pop\nBeijing,21\nShanghai,\n",
	}
	for what, csv := range cases {
		other := fpTable(t, "t", csv) // same name, different content
		if other.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint collision with base table", what)
		}
	}
}

func TestFingerprintSampledLargeTable(t *testing.T) {
	build := func(lastVal string) *Table {
		var sb strings.Builder
		sb.WriteString("id,v\n")
		for i := 0; i < fingerprintExactRows+100; i++ {
			sb.WriteString(strconv.Itoa(i))
			sb.WriteString(",1\n")
		}
		sb.WriteString("tail,")
		sb.WriteString(lastVal)
		sb.WriteString("\n")
		return fpTable(t, "big", sb.String())
	}
	a, b := build("7"), build("8")
	// The last row is always sampled, so a tail-only change must be seen.
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("sampled fingerprint missed a change in the last row")
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	tab := fpTable(t, "t", "a,b\n1,2\n3,4\n")
	var wg sync.WaitGroup
	got := make([]string, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = tab.Fingerprint()
		}(i)
	}
	wg.Wait()
	for _, fp := range got {
		if fp != got[0] {
			t.Fatal("concurrent fingerprints disagree")
		}
	}
}

func TestSampleIndices(t *testing.T) {
	if got := sampleIndices(3); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("small-n indices = %v", got)
	}
	big := sampleIndices(100000)
	if len(big) != fingerprintSampleRows {
		t.Fatalf("len = %d, want %d", len(big), fingerprintSampleRows)
	}
	if big[0] != 0 || big[len(big)-1] != 99999 {
		t.Errorf("endpoints = %d, %d", big[0], big[len(big)-1])
	}
	for i := 1; i < len(big); i++ {
		if big[i] <= big[i-1] {
			t.Fatalf("indices not strictly increasing at %d: %v", i, big[i-1:i+1])
		}
	}
}

func TestSetStatsDoesNotOverride(t *testing.T) {
	c := NumColumn("v", []float64{1, 2, 3})
	want := c.Stats() // computed first
	c.SetStats(Stats{N: 99})
	if got := c.Stats(); got != want {
		t.Errorf("SetStats overwrote computed stats: %+v", got)
	}
	// And the injection path: set before any computation.
	c2 := NumColumn("v", []float64{1, 2, 3})
	c2.SetStats(Stats{N: 42, Distinct: 7})
	if got := c2.Stats(); got.N != 42 || got.Distinct != 7 {
		t.Errorf("injected stats not returned: %+v", got)
	}
}
