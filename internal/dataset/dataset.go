// Package dataset provides the relational-table substrate DeepEye operates
// on: typed columns (categorical, numerical, temporal), automatic type
// inference from raw strings, CSV ingestion, and the per-column statistics
// (distinct counts, min/max, null handling) that the feature extractor and
// the ranking factors consume.
//
// Columns are stored columnar and typed: every cell's raw string is
// dictionary-encoded (a per-row uint32 code into an interned string
// table), numerical and temporal columns additionally carry parsed
// float64 / Unix-second int64 slices, and nullness lives in a packed
// bitmap. Hot kernels (stats, grouping, correlation) run as array passes
// over these slices instead of per-cell string and map traffic.
//
// A Table is immutable once built; all transformations (binning, grouping,
// aggregation) produce new derived series in package transform rather than
// mutating the table.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ColType is the inferred type of a column. DeepEye distinguishes exactly
// three types (paper §III feature 5): categorical, numerical, and temporal.
type ColType int

const (
	// Categorical columns contain a bounded set of string labels
	// (e.g. carrier codes, city names).
	Categorical ColType = iota
	// Numerical columns contain real numbers (e.g. delays, prices).
	Numerical
	// Temporal columns contain timestamps or dates.
	Temporal
)

// String returns the paper's abbreviation for the type (Cat/Num/Tem).
func (t ColType) String() string {
	switch t {
	case Categorical:
		return "Cat"
	case Numerical:
		return "Num"
	case Temporal:
		return "Tem"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is a single typed column of a Table, stored columnar:
//
//   - codes[i] indexes dict, the append-only interned table of every raw
//     cell string (null cells keep their original raw text, so journaling
//     and CSV round-trips see exactly what was ingested);
//   - nums[i] holds the parsed value when Type == Numerical;
//   - secs[i] holds the parsed timestamp as Unix seconds when
//     Type == Temporal (second granularity is the finest any recognized
//     layout produces, and it spans year 0 — "15:04" parses to year 0 —
//     which nanoseconds cannot);
//   - nulls is a packed bitmap: bit i set means cell i is null.
//
// Cells are read through accessors (Len, IsNull, RawAt, NumAt, SecAt);
// kernels that want zero-overhead passes borrow the typed slices
// directly (Codes, NumsSlice, SecsSlice) and must treat them read-only.
type Column struct {
	Name string
	Type ColType

	n     int
	codes []uint32
	dict  []string
	nums  []float64
	secs  []int64
	nulls []uint64

	// intern maps dict strings back to their code for appends; it is
	// dropped after construction (and absent on snapshot views) and
	// lazily rebuilt from dict by the first AppendCell.
	intern map[string]uint32

	// Lazily computed statistics, generation-checked so a live column
	// (one a registry dataset appends into) can invalidate the memo:
	// a cached value is only served while its generation matches
	// statsGen; AppendCell bumps the generation, orphaning the old
	// value. Concurrent readers of a shared immutable table still pay
	// one computation (double-checked under statsMu) and lock-free
	// reads afterwards.
	statsMu  sync.Mutex
	statsGen atomic.Uint64
	stats    atomic.Pointer[genStats]
	// seenBuf is the reusable distinct-count scratch bitmap (one bit
	// per dict code), guarded by statsMu; steady-state stats passes
	// allocate nothing.
	seenBuf []uint64
}

// genStats is a stats value stamped with the column generation it was
// computed at; see Column.Stats.
type genStats struct {
	s   Stats
	gen uint64
}

// Stats summarizes a column: the inputs to DeepEye's feature vector
// (paper §III features 1-4).
type Stats struct {
	N        int     // |X|: number of tuples (non-null)
	Distinct int     // d(X): number of distinct non-null values
	Ratio    float64 // r(X) = d(X)/|X|
	Min, Max float64 // numeric min/max; for temporal columns, Unix seconds
	HasNull  bool
}

// Len returns the number of cells in the column.
func (c *Column) Len() int { return c.n }

// IsNull reports whether cell i is null.
func (c *Column) IsNull(i int) bool {
	return c.nulls[uint(i)>>6]>>(uint(i)&63)&1 == 1
}

// RawAt returns the original string form of cell i (null cells keep the
// raw text they were ingested with).
func (c *Column) RawAt(i int) string { return c.dict[c.codes[i]] }

// NumAt returns the parsed value of cell i of a numerical column. The
// value for a null cell is unspecified.
func (c *Column) NumAt(i int) float64 { return c.nums[i] }

// SecAt returns the parsed Unix seconds of cell i of a temporal column.
// The value for a null cell is unspecified.
func (c *Column) SecAt(i int) int64 { return c.secs[i] }

// TimeAt reconstructs the timestamp of cell i of a temporal column in
// UTC (the stored granularity is Unix seconds).
func (c *Column) TimeAt(i int) time.Time { return time.Unix(c.secs[i], 0).UTC() }

// Codes returns the per-row dictionary codes. Read-only.
func (c *Column) Codes() []uint32 { return c.codes }

// DictLen returns the size of the interned string table (codes are in
// [0, DictLen)).
func (c *Column) DictLen() int { return len(c.dict) }

// DictAt returns the interned string for a dictionary code.
func (c *Column) DictAt(code uint32) string { return c.dict[code] }

// NumsSlice returns the parsed float64 values of a numerical column
// (nil otherwise). Read-only; entries at null rows are unspecified.
func (c *Column) NumsSlice() []float64 { return c.nums }

// SecsSlice returns the parsed Unix-second values of a temporal column
// (nil otherwise). Read-only; entries at null rows are unspecified.
func (c *Column) SecsSlice() []int64 { return c.secs }

// NumericAt returns the numeric interpretation of cell i (parsed value
// or Unix seconds) and whether one exists — mirroring what the stats
// kernel feeds its min/max.
func (c *Column) NumericAt(i int) (float64, bool) {
	if c.IsNull(i) {
		return 0, false
	}
	switch c.Type {
	case Numerical:
		return c.nums[i], true
	case Temporal:
		return float64(c.secs[i]), true
	}
	return 0, false
}

// Raws materializes the raw string of every cell into a fresh slice.
func (c *Column) Raws() []string {
	out := make([]string, c.n)
	for i := range out {
		out[i] = c.dict[c.codes[i]]
	}
	return out
}

// Nulls materializes the per-row null flags as a fresh []bool —
// unpacking the bitmap for callers (rebuilds, tests) that want the
// boolean form.
func (c *Column) Nulls() []bool {
	out := make([]bool, c.n)
	for i := range out {
		out[i] = c.IsNull(i)
	}
	return out
}

// Table is an immutable relational table over a fixed schema.
type Table struct {
	Name    string
	Columns []*Column
	// RaggedRows counts input rows that carried more cells than the
	// header during ingestion; the extra cells are dropped, and this
	// count is the trace of that truncation (surfaced on profiles and
	// in server responses). It does not affect the fingerprint: two
	// tables with identical surviving cells are identical content.
	RaggedRows int
	nRows      int
	byName     map[string]int

	// lazily computed content fingerprint (see fingerprint.go)
	fpOnce sync.Once
	fp     string
}

// New builds a Table from named columns. All columns must have the same
// length. The columns are adopted (not copied); callers must not mutate
// them afterwards.
func New(name string, cols []*Column) (*Table, error) {
	t := &Table{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("dataset: column %d is nil", i)
		}
		if i == 0 {
			t.nRows = c.Len()
		} else if c.Len() != t.nRows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, c.Len(), t.nRows)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column name %q", c.Name)
		}
		t.byName[c.Name] = i
	}
	return t, nil
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return t.nRows }

// NumCols returns the number of columns (m in the paper).
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.Columns[i]
	}
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// Stats returns the column's statistics, computing them on first use.
// On immutable tables the memoized value never goes stale; live
// columns (grown via AppendCell) invalidate the memo per append, so
// the next read recomputes over the grown data. Safe for concurrent
// use: the hot path is a single atomic load, and concurrent first
// reads compute once under a mutex.
func (c *Column) Stats() Stats {
	gen := c.statsGen.Load()
	if p := c.stats.Load(); p != nil && p.gen == gen {
		return p.s
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	gen = c.statsGen.Load()
	if p := c.stats.Load(); p != nil && p.gen == gen {
		return p.s
	}
	s := c.computeStatsLocked()
	c.stats.Store(&genStats{s: s, gen: gen})
	return s
}

// ComputeStats recomputes the column statistics without touching the
// memo: a single typed array pass with a reusable bitmap for distinct
// counting, allocation-free at steady state. Stats() wraps it with
// generation-checked memoization.
func (c *Column) ComputeStats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.computeStatsLocked()
}

// SetStats injects precomputed statistics (from the fingerprint-keyed
// statistics cache, or a registry dataset's online trackers) into the
// column's memo. It is a no-op when a current-generation value already
// exists, so an injected value can never overwrite a directly computed
// one.
func (c *Column) SetStats(s Stats) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	gen := c.statsGen.Load()
	if p := c.stats.Load(); p != nil && p.gen == gen {
		return
	}
	c.stats.Store(&genStats{s: s, gen: gen})
}

// InvalidateStats orphans any memoized statistics by advancing the
// column generation; the next Stats call recomputes. Used by live
// (registry-owned) columns after appends.
func (c *Column) InvalidateStats() {
	c.statsGen.Add(1)
}

// AppendCell grows the column by one cell, parsing raw under the
// column's fixed type with exactly the rules ForceType applies (null
// tokens and unparseable cells become null, failed numeric parses
// leave a zero value), and invalidates the stats memo. It reports
// whether the stored cell is null.
//
// AppendCell deliberately breaks the package's immutability contract:
// it exists for the live-dataset registry, which serializes appends
// under its own lock and hands readers immutable snapshot columns
// (see Freeze) instead of the column it grows. Never call it on a
// column reachable from a served Table.
func (c *Column) AppendCell(raw string) (null bool) {
	num, sec, null := c.parseCell(raw)
	c.appendCell(raw, null, num, sec)
	c.InvalidateStats()
	return null
}

// Freeze returns an immutable view of the column's first n rows: a
// fresh header over three-index slices of the typed storage plus a
// copy of the null bitmap words. Later appends to the receiver either
// write past every view's capped length or reallocate, so a frozen
// view never changes — this is the copy-on-write epoch snapshot the
// registry serves (the bitmap is copied because an append may set a
// bit inside the last shared word). The view carries no stats memo and
// no intern map; appending to it is legal and copies on first write.
func (c *Column) Freeze(n int) *Column {
	words := (n + 63) >> 6
	return &Column{
		Name:  c.Name,
		Type:  c.Type,
		n:     n,
		codes: c.codes[:n:n],
		dict:  c.dict[:len(c.dict):len(c.dict)],
		nums:  capFloats(c.nums, n),
		secs:  capInts(c.secs, n),
		nulls: append([]uint64(nil), c.nulls[:words]...),
	}
}

func capFloats(s []float64, n int) []float64 {
	if s == nil {
		return nil
	}
	return s[:n:n]
}

func capInts(s []int64, n int) []int64 {
	if s == nil {
		return nil
	}
	return s[:n:n]
}

// appendCell stores one already-parsed cell.
func (c *Column) appendCell(raw string, null bool, num float64, sec int64) {
	code, ok := c.internMap()[raw]
	if !ok {
		code = uint32(len(c.dict))
		c.dict = append(c.dict, raw)
		c.intern[raw] = code
	}
	c.codes = append(c.codes, code)
	if c.n&63 == 0 {
		c.nulls = append(c.nulls, 0)
	}
	if null {
		c.nulls[uint(c.n)>>6] |= 1 << (uint(c.n) & 63)
	}
	switch c.Type {
	case Numerical:
		c.nums = append(c.nums, num)
	case Temporal:
		c.secs = append(c.secs, sec)
	}
	c.n++
}

// internMap returns the raw→code map, rebuilding it from dict after a
// Freeze or a construction-time drop.
func (c *Column) internMap() map[string]uint32 {
	if c.intern == nil {
		c.intern = make(map[string]uint32, len(c.dict))
		for i, s := range c.dict {
			c.intern[s] = uint32(i)
		}
	}
	return c.intern
}

// parseCell evaluates one raw cell under the column's fixed type: the
// parsed value (for numerical/temporal columns) and whether the stored
// cell would be null. Pure — the column is not touched.
func (c *Column) parseCell(raw string) (num float64, sec int64, null bool) {
	if isNullToken(raw) {
		return 0, 0, true
	}
	switch c.Type {
	case Numerical:
		v, ok := parseNumber(raw)
		if !ok {
			return 0, 0, true
		}
		return v, 0, false
	case Temporal:
		v, ok := ParseTime(raw)
		if !ok {
			return 0, 0, true
		}
		return 0, v.Unix(), false
	}
	return 0, 0, false
}

// CellIsNull reports whether AppendCell(raw) would store a null cell —
// the dry-run the registry's WAL preview uses to journal an append's
// post-state fingerprint before mutating any storage.
func (c *Column) CellIsNull(raw string) bool {
	_, _, null := c.parseCell(raw)
	return null
}

func (c *Column) computeStatsLocked() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	words := (len(c.dict) + 63) >> 6
	if cap(c.seenBuf) < words {
		c.seenBuf = make([]uint64, words)
	} else {
		c.seenBuf = c.seenBuf[:words]
		clear(c.seenBuf)
	}
	seen := c.seenBuf
	distinct := 0
	switch c.Type {
	case Numerical:
		for i := 0; i < c.n; i++ {
			if c.IsNull(i) {
				s.HasNull = true
				continue
			}
			s.N++
			code := c.codes[i]
			if seen[code>>6]>>(code&63)&1 == 0 {
				seen[code>>6] |= 1 << (code & 63)
				distinct++
			}
			v := c.nums[i]
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	case Temporal:
		for i := 0; i < c.n; i++ {
			if c.IsNull(i) {
				s.HasNull = true
				continue
			}
			s.N++
			code := c.codes[i]
			if seen[code>>6]>>(code&63)&1 == 0 {
				seen[code>>6] |= 1 << (code & 63)
				distinct++
			}
			v := float64(c.secs[i])
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if c.IsNull(i) {
				s.HasNull = true
				continue
			}
			s.N++
			code := c.codes[i]
			if seen[code>>6]>>(code&63)&1 == 0 {
				seen[code>>6] |= 1 << (code & 63)
				distinct++
			}
		}
	}
	s.Distinct = distinct
	if s.N > 0 {
		s.Ratio = float64(s.Distinct) / float64(s.N)
	}
	if s.N == 0 || c.Type == Categorical {
		s.Min, s.Max = 0, 0
	}
	return s
}

// NumericValues returns the non-null numeric values of a numerical column,
// or temporal values as Unix seconds. For categorical columns it returns nil.
func (c *Column) NumericValues() []float64 {
	switch c.Type {
	case Numerical:
		out := make([]float64, 0, c.n)
		for i, v := range c.nums {
			if !c.IsNull(i) {
				out = append(out, v)
			}
		}
		return out
	case Temporal:
		out := make([]float64, 0, c.n)
		for i, v := range c.secs {
			if !c.IsNull(i) {
				out = append(out, float64(v))
			}
		}
		return out
	default:
		return nil
	}
}

// DistinctValues returns the sorted distinct non-null raw values.
func (c *Column) DistinctValues() []string {
	seen := make([]bool, len(c.dict))
	count := 0
	for i := 0; i < c.n; i++ {
		if c.IsNull(i) {
			continue
		}
		if !seen[c.codes[i]] {
			seen[c.codes[i]] = true
			count++
		}
	}
	out := make([]string, 0, count)
	for code, ok := range seen {
		if ok {
			out = append(out, c.dict[code])
		}
	}
	sort.Strings(out)
	return out
}

// temporalLayouts are the formats the type sniffer recognizes, most
// specific first.
var temporalLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	"2006/01/02",
	"01/02/2006",
	"02-Jan 15:04",
	"02-Jan",
	"Jan 2006",
	"2006-01",
	"15:04:05",
	"15:04",
}

// ParseTime attempts to parse s with the recognized temporal layouts.
func ParseTime(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, false
	}
	for _, layout := range temporalLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, true
		}
	}
	return time.Time{}, false
}

// parseNumber parses a numeric cell, tolerating thousands separators,
// currency symbols and percent signs as they appear in real-world CSVs.
func parseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	s = strings.ReplaceAll(s, ",", "")
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// isNullToken reports whether a raw cell should be treated as null.
func isNullToken(s string) bool {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "null", "na", "n/a", "nan", "-", "none":
		return true
	}
	return false
}

// newColumn allocates an empty column sized for n cells.
func newColumn(name string, typ ColType, n int) *Column {
	c := &Column{
		Name:   name,
		Type:   typ,
		codes:  make([]uint32, 0, n),
		nulls:  make([]uint64, 0, (n+63)>>6+1),
		intern: make(map[string]uint32),
	}
	switch typ {
	case Numerical:
		c.nums = make([]float64, 0, n)
	case Temporal:
		c.secs = make([]int64, 0, n)
	}
	return c
}

// buildColumn encodes raw cells under a fixed type. When null is nil,
// nullness is derived from the raw text (null tokens and cells that
// fail the typed parse); otherwise the provided flags are adopted
// verbatim and only non-null cells are parsed (a non-null cell whose
// raw string does not parse keeps a zero value). The intern map is
// dropped afterwards — AppendCell rebuilds it on first use.
func buildColumn(name string, typ ColType, raw []string, null []bool) *Column {
	c := newColumn(name, typ, len(raw))
	for i, s := range raw {
		var num float64
		var sec int64
		var isNull bool
		if null != nil {
			isNull = null[i]
			if !isNull {
				switch typ {
				case Numerical:
					if v, ok := parseNumber(s); ok {
						num = v
					}
				case Temporal:
					if ts, ok := ParseTime(s); ok {
						sec = ts.Unix()
					}
				}
			}
		} else {
			num, sec, isNull = c.parseCell(s)
		}
		c.appendCell(s, isNull, num, sec)
	}
	c.intern = nil
	return c
}

// InferColumn builds a typed Column from raw string cells, detecting the
// type automatically (paper §II-A: "whose data type can be automatically
// detected based on the attribute values"). A column is numerical if at
// least 90% of non-null cells parse as numbers, temporal if at least 90%
// parse as timestamps, and categorical otherwise. Pure-year columns
// (integers 1900-2100 named like years) stay numerical; callers can
// override with ForceType.
func InferColumn(name string, raw []string) *Column {
	nonNull, numOK, temOK := 0, 0, 0
	for _, s := range raw {
		if isNullToken(s) {
			continue
		}
		nonNull++
		if _, ok := parseNumber(s); ok {
			numOK++
		} else if _, ok := ParseTime(s); ok {
			temOK++
		}
	}
	const threshold = 0.9
	typ := Categorical
	switch {
	case nonNull > 0 && float64(numOK) >= threshold*float64(nonNull):
		typ = Numerical
	case nonNull > 0 && float64(temOK) >= threshold*float64(nonNull):
		typ = Temporal
	}
	return buildColumn(name, typ, raw, nil)
}

// ForceType reinterprets raw cells under an explicit type, marking
// unparseable cells null. It returns a new column; the input is not mutated.
func ForceType(name string, raw []string, typ ColType) *Column {
	return buildColumn(name, typ, raw, nil)
}

// RebuildColumn reconstructs a column from journaled storage: raw
// strings and null flags are adopted verbatim (they are the stored
// truth — caller-built tables can carry null flags that are not
// derivable from the raw strings, so re-parsing would drift), and only
// the parsed-value slices are rematerialized for non-null cells. A
// non-null cell whose raw string no longer parses keeps a zero value,
// mirroring what the original column held. Used by WAL/snapshot
// recovery in the live-dataset registry.
func RebuildColumn(name string, typ ColType, raw []string, null []bool) *Column {
	return buildColumn(name, typ, raw, null)
}

// NumColumn builds a numerical column directly from float values.
func NumColumn(name string, vals []float64) *Column {
	c := newColumn(name, Numerical, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) {
			c.appendCell("", true, v, 0)
			continue
		}
		c.appendCell(strconv.FormatFloat(v, 'g', -1, 64), false, v, 0)
	}
	c.intern = nil
	return c
}

// CatColumn builds a categorical column directly from string labels.
func CatColumn(name string, vals []string) *Column {
	c := newColumn(name, Categorical, len(vals))
	for _, v := range vals {
		c.appendCell(v, isNullToken(v), 0, 0)
	}
	c.intern = nil
	return c
}

// TimeColumn builds a temporal column directly from timestamps.
func TimeColumn(name string, vals []time.Time) *Column {
	c := newColumn(name, Temporal, len(vals))
	for _, v := range vals {
		if v.IsZero() {
			c.appendCell("", true, 0, v.Unix())
			continue
		}
		c.appendCell(v.Format("2006-01-02 15:04:05"), false, 0, v.Unix())
	}
	c.intern = nil
	return c
}
