// Package dataset provides the relational-table substrate DeepEye operates
// on: typed columns (categorical, numerical, temporal), automatic type
// inference from raw strings, CSV ingestion, and the per-column statistics
// (distinct counts, min/max, null handling) that the feature extractor and
// the ranking factors consume.
//
// A Table is immutable once built; all transformations (binning, grouping,
// aggregation) produce new derived series in package transform rather than
// mutating the table.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ColType is the inferred type of a column. DeepEye distinguishes exactly
// three types (paper §III feature 5): categorical, numerical, and temporal.
type ColType int

const (
	// Categorical columns contain a bounded set of string labels
	// (e.g. carrier codes, city names).
	Categorical ColType = iota
	// Numerical columns contain real numbers (e.g. delays, prices).
	Numerical
	// Temporal columns contain timestamps or dates.
	Temporal
)

// String returns the paper's abbreviation for the type (Cat/Num/Tem).
func (t ColType) String() string {
	switch t {
	case Categorical:
		return "Cat"
	case Numerical:
		return "Num"
	case Temporal:
		return "Tem"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is a single typed column of a Table. Raw holds the original string
// form of every cell. Depending on Type, Nums or Times holds the parsed
// values; Null marks cells that failed to parse or were empty.
//
// Invariants: len(Raw) == len(Null) == table.NumRows(); for Numerical
// columns len(Nums) == len(Raw); for Temporal columns len(Times) == len(Raw).
type Column struct {
	Name  string
	Type  ColType
	Raw   []string
	Nums  []float64   // parsed values when Type == Numerical
	Times []time.Time // parsed values when Type == Temporal
	Null  []bool

	// Lazily computed statistics, generation-checked so a live column
	// (one a registry dataset appends into) can invalidate the memo:
	// a cached value is only served while its generation matches
	// statsGen; AppendCell bumps the generation, orphaning the old
	// value. Concurrent readers of a shared immutable table still pay
	// one computation (double-checked under statsMu) and lock-free
	// reads afterwards.
	statsMu  sync.Mutex
	statsGen atomic.Uint64
	stats    atomic.Pointer[genStats]
}

// genStats is a stats value stamped with the column generation it was
// computed at; see Column.Stats.
type genStats struct {
	s   Stats
	gen uint64
}

// Stats summarizes a column: the inputs to DeepEye's feature vector
// (paper §III features 1-4).
type Stats struct {
	N        int     // |X|: number of tuples (non-null)
	Distinct int     // d(X): number of distinct non-null values
	Ratio    float64 // r(X) = d(X)/|X|
	Min, Max float64 // numeric min/max; for temporal columns, Unix seconds
	HasNull  bool
}

// Table is an immutable relational table over a fixed schema.
type Table struct {
	Name    string
	Columns []*Column
	// RaggedRows counts input rows that carried more cells than the
	// header during ingestion; the extra cells are dropped, and this
	// count is the trace of that truncation (surfaced on profiles and
	// in server responses). It does not affect the fingerprint: two
	// tables with identical surviving cells are identical content.
	RaggedRows int
	nRows      int
	byName     map[string]int

	// lazily computed content fingerprint (see fingerprint.go)
	fpOnce sync.Once
	fp     string
}

// New builds a Table from named columns. All columns must have the same
// length. The columns are adopted (not copied); callers must not mutate
// them afterwards.
func New(name string, cols []*Column) (*Table, error) {
	t := &Table{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("dataset: column %d is nil", i)
		}
		if i == 0 {
			t.nRows = len(c.Raw)
		} else if len(c.Raw) != t.nRows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, want %d", c.Name, len(c.Raw), t.nRows)
		}
		if len(c.Null) != len(c.Raw) {
			return nil, fmt.Errorf("dataset: column %q null mask has %d entries, want %d", c.Name, len(c.Null), len(c.Raw))
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column name %q", c.Name)
		}
		t.byName[c.Name] = i
	}
	return t, nil
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return t.nRows }

// NumCols returns the number of columns (m in the paper).
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.Columns[i]
	}
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// Stats returns the column's statistics, computing them on first use.
// On immutable tables the memoized value never goes stale; live
// columns (grown via AppendCell) invalidate the memo per append, so
// the next read recomputes over the grown data. Safe for concurrent
// use: the hot path is a single atomic load, and concurrent first
// reads compute once under a mutex.
func (c *Column) Stats() Stats {
	gen := c.statsGen.Load()
	if p := c.stats.Load(); p != nil && p.gen == gen {
		return p.s
	}
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	gen = c.statsGen.Load()
	if p := c.stats.Load(); p != nil && p.gen == gen {
		return p.s
	}
	s := computeStats(c)
	c.stats.Store(&genStats{s: s, gen: gen})
	return s
}

// SetStats injects precomputed statistics (from the fingerprint-keyed
// statistics cache, or a registry dataset's online trackers) into the
// column's memo. It is a no-op when a current-generation value already
// exists, so an injected value can never overwrite a directly computed
// one.
func (c *Column) SetStats(s Stats) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	gen := c.statsGen.Load()
	if p := c.stats.Load(); p != nil && p.gen == gen {
		return
	}
	c.stats.Store(&genStats{s: s, gen: gen})
}

// InvalidateStats orphans any memoized statistics by advancing the
// column generation; the next Stats call recomputes. Used by live
// (registry-owned) columns after appends.
func (c *Column) InvalidateStats() {
	c.statsGen.Add(1)
}

// AppendCell grows the column by one cell, parsing raw under the
// column's fixed type with exactly the rules ForceType applies (null
// tokens and unparseable cells become null, failed numeric parses
// leave a zero in Nums), and invalidates the stats memo. It reports
// whether the stored cell is null.
//
// AppendCell deliberately breaks the package's immutability contract:
// it exists for the live-dataset registry, which serializes appends
// under its own lock and hands readers immutable snapshot columns
// (fresh Column headers over three-index slices of the live storage)
// instead of the column it grows. Never call it on a column reachable
// from a served Table.
func (c *Column) AppendCell(raw string) (null bool) {
	num, ts, null := c.parseCell(raw)
	c.Raw = append(c.Raw, raw)
	c.Null = append(c.Null, null)
	switch c.Type {
	case Numerical:
		c.Nums = append(c.Nums, num)
	case Temporal:
		c.Times = append(c.Times, ts)
	}
	c.InvalidateStats()
	return null
}

// parseCell evaluates one raw cell under the column's fixed type: the
// parsed value (for numerical/temporal columns) and whether the stored
// cell would be null. Pure — the column is not touched.
func (c *Column) parseCell(raw string) (num float64, ts time.Time, null bool) {
	if isNullToken(raw) {
		return 0, time.Time{}, true
	}
	switch c.Type {
	case Numerical:
		v, ok := parseNumber(raw)
		if !ok {
			return 0, time.Time{}, true
		}
		return v, time.Time{}, false
	case Temporal:
		v, ok := ParseTime(raw)
		if !ok {
			return 0, time.Time{}, true
		}
		return 0, v, false
	}
	return 0, time.Time{}, false
}

// CellIsNull reports whether AppendCell(raw) would store a null cell —
// the dry-run the registry's WAL preview uses to journal an append's
// post-state fingerprint before mutating any storage.
func (c *Column) CellIsNull(raw string) bool {
	_, _, null := c.parseCell(raw)
	return null
}

func computeStats(c *Column) Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	distinct := make(map[string]struct{})
	for i, raw := range c.Raw {
		if c.Null[i] {
			s.HasNull = true
			continue
		}
		s.N++
		distinct[raw] = struct{}{}
		switch c.Type {
		case Numerical:
			v := c.Nums[i]
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		case Temporal:
			v := float64(c.Times[i].Unix())
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
	}
	s.Distinct = len(distinct)
	if s.N > 0 {
		s.Ratio = float64(s.Distinct) / float64(s.N)
	}
	if s.N == 0 || c.Type == Categorical {
		s.Min, s.Max = 0, 0
	}
	return s
}

// NumericValues returns the non-null numeric values of a numerical column,
// or temporal values as Unix seconds. For categorical columns it returns nil.
func (c *Column) NumericValues() []float64 {
	switch c.Type {
	case Numerical:
		out := make([]float64, 0, len(c.Nums))
		for i, v := range c.Nums {
			if !c.Null[i] {
				out = append(out, v)
			}
		}
		return out
	case Temporal:
		out := make([]float64, 0, len(c.Times))
		for i, v := range c.Times {
			if !c.Null[i] {
				out = append(out, float64(v.Unix()))
			}
		}
		return out
	default:
		return nil
	}
}

// DistinctValues returns the sorted distinct non-null raw values.
func (c *Column) DistinctValues() []string {
	set := make(map[string]struct{})
	for i, raw := range c.Raw {
		if !c.Null[i] {
			set[raw] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// temporalLayouts are the formats the type sniffer recognizes, most
// specific first.
var temporalLayouts = []string{
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	"2006/01/02",
	"01/02/2006",
	"02-Jan 15:04",
	"02-Jan",
	"Jan 2006",
	"2006-01",
	"15:04:05",
	"15:04",
}

// ParseTime attempts to parse s with the recognized temporal layouts.
func ParseTime(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, false
	}
	for _, layout := range temporalLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, true
		}
	}
	return time.Time{}, false
}

// parseNumber parses a numeric cell, tolerating thousands separators,
// currency symbols and percent signs as they appear in real-world CSVs.
func parseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	s = strings.ReplaceAll(s, ",", "")
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// isNullToken reports whether a raw cell should be treated as null.
func isNullToken(s string) bool {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "null", "na", "n/a", "nan", "-", "none":
		return true
	}
	return false
}

// InferColumn builds a typed Column from raw string cells, detecting the
// type automatically (paper §II-A: "whose data type can be automatically
// detected based on the attribute values"). A column is numerical if at
// least 90% of non-null cells parse as numbers, temporal if at least 90%
// parse as timestamps, and categorical otherwise. Pure-year columns
// (integers 1900-2100 named like years) stay numerical; callers can
// override with ForceType.
func InferColumn(name string, raw []string) *Column {
	n := len(raw)
	c := &Column{Name: name, Raw: raw, Null: make([]bool, n)}
	nonNull, numOK, temOK := 0, 0, 0
	for i, s := range raw {
		if isNullToken(s) {
			c.Null[i] = true
			continue
		}
		nonNull++
		if _, ok := parseNumber(s); ok {
			numOK++
		} else if _, ok := ParseTime(s); ok {
			temOK++
		}
	}
	const threshold = 0.9
	switch {
	case nonNull > 0 && float64(numOK) >= threshold*float64(nonNull):
		c.Type = Numerical
	case nonNull > 0 && float64(temOK) >= threshold*float64(nonNull):
		c.Type = Temporal
	default:
		c.Type = Categorical
	}
	materialize(c)
	return c
}

// ForceType reinterprets raw cells under an explicit type, marking
// unparseable cells null. It returns a new column; the input is not mutated.
func ForceType(name string, raw []string, typ ColType) *Column {
	n := len(raw)
	c := &Column{Name: name, Type: typ, Raw: raw, Null: make([]bool, n)}
	for i, s := range raw {
		if isNullToken(s) {
			c.Null[i] = true
		}
	}
	materialize(c)
	return c
}

// RebuildColumn reconstructs a column from journaled storage: raw
// strings and null flags are adopted verbatim (they are the stored
// truth — caller-built tables can carry null flags that are not
// derivable from the raw strings, so re-parsing would drift), and only
// the parsed-value slices are rematerialized for non-null cells. A
// non-null cell whose raw string no longer parses keeps a zero value,
// mirroring what the original column held. Used by WAL/snapshot
// recovery in the live-dataset registry.
func RebuildColumn(name string, typ ColType, raw []string, null []bool) *Column {
	n := len(raw)
	c := &Column{Name: name, Type: typ, Raw: raw, Null: null}
	switch typ {
	case Numerical:
		c.Nums = make([]float64, n)
		for i, s := range raw {
			if null[i] {
				continue
			}
			if v, ok := parseNumber(s); ok {
				c.Nums[i] = v
			}
		}
	case Temporal:
		c.Times = make([]time.Time, n)
		for i, s := range raw {
			if null[i] {
				continue
			}
			if ts, ok := ParseTime(s); ok {
				c.Times[i] = ts
			}
		}
	}
	return c
}

// materialize fills Nums/Times according to c.Type, nulling cells that
// fail to parse.
func materialize(c *Column) {
	n := len(c.Raw)
	switch c.Type {
	case Numerical:
		c.Nums = make([]float64, n)
		for i, s := range c.Raw {
			if c.Null[i] {
				continue
			}
			v, ok := parseNumber(s)
			if !ok {
				c.Null[i] = true
				continue
			}
			c.Nums[i] = v
		}
	case Temporal:
		c.Times = make([]time.Time, n)
		for i, s := range c.Raw {
			if c.Null[i] {
				continue
			}
			ts, ok := ParseTime(s)
			if !ok {
				c.Null[i] = true
				continue
			}
			c.Times[i] = ts
		}
	}
}

// NumColumn builds a numerical column directly from float values.
func NumColumn(name string, vals []float64) *Column {
	raw := make([]string, len(vals))
	nulls := make([]bool, len(vals))
	for i, v := range vals {
		if math.IsNaN(v) {
			nulls[i] = true
			continue
		}
		raw[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return &Column{Name: name, Type: Numerical, Raw: raw, Nums: append([]float64(nil), vals...), Null: nulls}
}

// CatColumn builds a categorical column directly from string labels.
func CatColumn(name string, vals []string) *Column {
	nulls := make([]bool, len(vals))
	for i, v := range vals {
		if isNullToken(v) {
			nulls[i] = true
		}
	}
	return &Column{Name: name, Type: Categorical, Raw: append([]string(nil), vals...), Null: nulls}
}

// TimeColumn builds a temporal column directly from timestamps.
func TimeColumn(name string, vals []time.Time) *Column {
	raw := make([]string, len(vals))
	nulls := make([]bool, len(vals))
	for i, v := range vals {
		if v.IsZero() {
			nulls[i] = true
			continue
		}
		raw[i] = v.Format("2006-01-02 15:04:05")
	}
	return &Column{Name: name, Type: Temporal, Raw: raw, Times: append([]time.Time(nil), vals...), Null: nulls}
}
