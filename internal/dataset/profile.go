package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnProfile summarizes one column for data-profiling output.
type ColumnProfile struct {
	Name      string
	Type      ColType
	Rows      int
	NonNull   int
	Distinct  int
	Ratio     float64
	Min, Max  float64 // numeric/temporal only
	TopValues []ValueCount
}

// ValueCount is a value with its occurrence count.
type ValueCount struct {
	Value string
	Count int
}

// Profile summarizes every column of the table — the data-understanding
// step that precedes visualization selection.
func (t *Table) Profile(topK int) []ColumnProfile {
	if topK <= 0 {
		topK = 5
	}
	out := make([]ColumnProfile, 0, len(t.Columns))
	for _, c := range t.Columns {
		s := c.Stats()
		p := ColumnProfile{
			Name: c.Name, Type: c.Type,
			Rows: c.Len(), NonNull: s.N,
			Distinct: s.Distinct, Ratio: s.Ratio,
			Min: s.Min, Max: s.Max,
		}
		counts := make([]int, c.DictLen())
		for i, code := range c.Codes() {
			if !c.IsNull(i) {
				counts[code]++
			}
		}
		for code, n := range counts {
			if n > 0 {
				p.TopValues = append(p.TopValues, ValueCount{c.DictAt(uint32(code)), n})
			}
		}
		sort.Slice(p.TopValues, func(a, b int) bool {
			if p.TopValues[a].Count != p.TopValues[b].Count {
				return p.TopValues[a].Count > p.TopValues[b].Count
			}
			return p.TopValues[a].Value < p.TopValues[b].Value
		})
		if len(p.TopValues) > topK {
			p.TopValues = p.TopValues[:topK]
		}
		out = append(out, p)
	}
	return out
}

// FormatProfile renders profiles as an aligned text table.
func FormatProfile(profiles []ColumnProfile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-4s %8s %8s %8s  %s\n", "column", "type", "non-null", "distinct", "ratio", "range / top values")
	for _, p := range profiles {
		detail := ""
		switch p.Type {
		case Numerical:
			detail = fmt.Sprintf("[%.4g … %.4g]", p.Min, p.Max)
		case Temporal:
			detail = "(temporal)"
		default:
			var tops []string
			for _, tv := range p.TopValues {
				tops = append(tops, fmt.Sprintf("%s×%d", tv.Value, tv.Count))
			}
			detail = strings.Join(tops, ", ")
		}
		fmt.Fprintf(&sb, "%-24s %-4s %8d %8d %8.3f  %s\n",
			clipStr(p.Name, 24), p.Type, p.NonNull, p.Distinct, p.Ratio, detail)
	}
	return sb.String()
}

func clipStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
