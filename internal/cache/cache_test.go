package cache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/obs"
)

func newTestCache(maxBytes int64) *Cache {
	return New(Config{Name: "test", MaxBytes: maxBytes, Registry: obs.NewRegistry()})
}

func TestGetPut(t *testing.T) {
	c := newTestCache(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 42, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(a) = %v, %t", v, ok)
	}
	c.Put("a", 43, 10) // replace
	if v, _ := c.Get("a"); v.(int) != 43 {
		t.Fatalf("replaced value = %v", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d", n)
	}
	st := c.CacheStats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("Remove left the entry")
	}
}

func TestEvictionLRUUnderBytePressure(t *testing.T) {
	// One shard's budget is MaxBytes/16; use keys that land in the same
	// shard by brute-force searching for them.
	c := newTestCache(16 * 100) // 100 bytes per shard
	shardOf := func(k string) *shard { return c.shardOf(k) }
	var keys []string
	want := shardOf("seed")
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("key-%d", i)
		if shardOf(k) == want {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Put(k, k, 40) // 3 × 40 > 100: the first inserted must go
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Error("LRU entry survived byte pressure")
	}
	for _, k := range keys[1:3] {
		if _, ok := c.Get(k); !ok {
			t.Errorf("recent entry %s evicted", k)
		}
	}
	if st := c.CacheStats(); st.Evictions == 0 {
		t.Error("evictions counter stayed zero")
	}
	// Touching keys[1] makes keys[2] the LRU victim for the next insert.
	c.Get(keys[1])
	c.Put(keys[3], "x", 40)
	if _, ok := c.Get(keys[2]); ok {
		t.Error("LRU order ignored a Get promotion")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Error("promoted entry evicted")
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := newTestCache(16 * 100)
	c.Put("huge", "x", 1000) // larger than a shard: skipped
	if _, ok := c.Get("huge"); ok {
		t.Error("entry larger than a shard was cached")
	}
	if c.Bytes() != 0 {
		t.Errorf("Bytes = %d", c.Bytes())
	}
}

func TestPurge(t *testing.T) {
	c := newTestCache(1 << 20)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after purge: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := newTestCache(1 << 20)
	calls := 0
	compute := func(context.Context) (any, int64, error) {
		calls++
		return "value", 10, nil
	}
	v, hit, err := c.Do(context.Background(), "k", compute)
	if err != nil || hit || v.(string) != "value" {
		t.Fatalf("first Do = %v, %t, %v", v, hit, err)
	}
	v, hit, err = c.Do(context.Background(), "k", compute)
	if err != nil || !hit || v.(string) != "value" {
		t.Fatalf("second Do = %v, %t, %v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := newTestCache(1 << 20)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		calls++
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		calls++
		return "ok", 1, nil
	})
	if err != nil || v.(string) != "ok" || calls != 2 {
		t.Fatalf("retry after error: v=%v err=%v calls=%d", v, err, calls)
	}
}

func TestDoCoalescesConcurrentCallers(t *testing.T) {
	c := newTestCache(1 << 20)
	const waiters = 8
	started := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var wg sync.WaitGroup
	results := make([]string, waiters+1)
	errs := make([]error, waiters+1)

	// Leader: blocks inside compute until released.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
			calls++ // only the leader runs compute; no lock needed
			close(started)
			<-release
			return "shared", 10, nil
		})
		if err == nil {
			results[0] = v.(string)
		}
		errs[0] = err
	}()
	<-started
	// Waiters join while the leader is mid-compute.
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
				t.Error("waiter ran compute")
				return nil, 0, nil
			})
			if err == nil {
				results[i] = v.(string)
				if !hit {
					t.Error("waiter reported a non-hit")
				}
			}
			errs[i] = err
		}(i)
	}
	// Wait until every waiter has joined the flight, then release.
	for c.CacheStats().Coalesced < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, r := range results {
		if errs[i] != nil || r != "shared" {
			t.Fatalf("caller %d: %q, %v", i, r, errs[i])
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers", calls, waiters+1)
	}
	if st := c.CacheStats(); st.Coalesced != waiters {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, waiters)
	}
}

func TestDoWaiterCancellation(t *testing.T) {
	c := newTestCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		close(started)
		<-release
		return "v", 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func(context.Context) (any, int64, error) {
		t.Error("cancelled waiter ran compute")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoLeaderCancellationDoesNotPoisonWaiters(t *testing.T) {
	c := newTestCache(1 << 20)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(leaderCtx, "k", func(ctx context.Context) (any, int64, error) {
			close(started)
			<-ctx.Done() // the leader's request dies mid-compute
			return nil, 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-started

	// A waiter with a live ctx joins, the leader is cancelled, and the
	// waiter must retry and compute the value itself.
	done := make(chan struct{})
	var got any
	var gotErr error
	go func() {
		defer close(done)
		got, _, gotErr = c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
			return "recomputed", 1, nil
		})
	}()
	cancelLeader()
	<-done
	wg.Wait()
	if gotErr != nil || got.(string) != "recomputed" {
		t.Fatalf("waiter after leader cancellation: %v, %v", got, gotErr)
	}
}

func TestPrimeTableInjectsCachedStats(t *testing.T) {
	c := newTestCache(1 << 20)
	load := func() *dataset.Table {
		tab, err := dataset.FromCSV("t", strings.NewReader("city,pop\nBeijing,21\nShanghai,24\n"))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a := load()
	PrimeTable(c, a)
	wantEntries := a.NumCols()
	if c.Len() != wantEntries {
		t.Fatalf("entries after first prime = %d, want %d", c.Len(), wantEntries)
	}
	// A second, identical upload parses into a fresh table; priming must
	// hit every column entry and inject the same statistics.
	before := c.CacheStats()
	b := load()
	PrimeTable(c, b)
	after := c.CacheStats()
	if hits := after.Hits - before.Hits; hits != uint64(wantEntries) {
		t.Errorf("prime hits = %d, want %d", hits, wantEntries)
	}
	for i := range a.Columns {
		if a.Columns[i].Stats() != b.Columns[i].Stats() {
			t.Errorf("column %d stats differ after injection", i)
		}
	}
	// ColumnInfo served from the same entries.
	info, ok := ColumnInfo(c, b, "pop")
	if !ok || info.N != 2 || info.Distinct != 2 {
		t.Errorf("ColumnInfo = %+v, %t", info, ok)
	}
	if _, ok := ColumnInfo(c, b, "missing"); ok {
		t.Error("ColumnInfo found a missing column")
	}
}

func TestShardSpread(t *testing.T) {
	c := newTestCache(1 << 20)
	used := map[*shard]bool{}
	for i := 0; i < 200; i++ {
		used[c.shardOf(fmt.Sprintf("key-%d", i))] = true
	}
	if len(used) < numShards/2 {
		t.Errorf("200 keys landed on only %d of %d shards", len(used), numShards)
	}
}

func TestRemoveFunc(t *testing.T) {
	c := newTestCache(1 << 20)
	c.Put("topk|fpA|k=5", 1, 10)
	c.Put("topk|fpB|k=5", 2, 10)
	c.Put("rank|fpA", 3, 10)
	c.Put("plain", 4, 10)
	n := c.RemoveFunc(func(key string) bool { return strings.HasPrefix(key, "topk|") })
	if n != 2 {
		t.Fatalf("RemoveFunc removed %d, want 2", n)
	}
	if _, ok := c.Get("topk|fpA|k=5"); ok {
		t.Error("matched entry survived")
	}
	if _, ok := c.Get("rank|fpA"); !ok {
		t.Error("unmatched entry was removed")
	}
	if c.Len() != 2 || c.Bytes() != 20 {
		t.Errorf("Len/Bytes = %d/%d after RemoveFunc, want 2/20", c.Len(), c.Bytes())
	}
	if n := c.RemoveFunc(func(string) bool { return false }); n != 0 {
		t.Errorf("no-match RemoveFunc removed %d", n)
	}
}

func TestRemoveFingerprint(t *testing.T) {
	c := newTestCache(1 << 20)
	c.Put("topk|fpA|k=5", 1, 10)
	c.Put("query|fpA|VISUALIZE …", 2, 10)
	c.Put("col|fpA|city", 3, 10)
	c.Put("rank|fpA", 4, 10)
	c.Put("topk|fpB|k=5", 5, 10)
	c.Put("nopipes", 6, 10)
	if n := c.RemoveFingerprint("fpA"); n != 4 {
		t.Fatalf("RemoveFingerprint(fpA) removed %d, want 4", n)
	}
	if _, ok := c.Get("topk|fpB|k=5"); !ok {
		t.Error("fpB entry was removed")
	}
	if _, ok := c.Get("nopipes"); !ok {
		t.Error("pipeless key was removed")
	}
	if n := c.RemoveFingerprint(""); n != 0 {
		t.Errorf("RemoveFingerprint(\"\") removed %d", n)
	}
	// fpA must not match as a prefix or substring of another fingerprint.
	c.Put("topk|fpAA|k=5", 7, 10)
	if n := c.RemoveFingerprint("fpA"); n != 0 {
		t.Errorf("RemoveFingerprint(fpA) matched fpAA: removed %d", n)
	}
}
