package cache

import (
	"github.com/deepeye/deepeye/internal/dataset"
	"github.com/deepeye/deepeye/internal/feature"
)

// ColumnDerived bundles the per-column values the pipeline derives from
// raw cells: the dataset statistics (distinct counts, min/max, nulls)
// and the column half of the §III feature vector. Both are keyed by
// (table fingerprint, column name), so they are computed once per table
// content — re-uploads of an identical CSV reuse them even though every
// upload parses into a fresh Table.
type ColumnDerived struct {
	Stats dataset.Stats
	Info  feature.ColumnInfo
}

// columnDerivedSize is the flat size of one cached ColumnDerived entry
// (two small structs); the key's bytes are added per entry.
const columnDerivedSize = 128

// PrimeTable injects cached per-column statistics into t's columns, and
// caches freshly computed ones for the columns not seen before. After
// priming, every downstream Stats()/feature extraction call on the
// table is a memo read — the stats/feature passes run once per distinct
// table content, not once per upload.
func PrimeTable(c *Cache, t *dataset.Table) {
	if c == nil || t == nil {
		return
	}
	fp := t.Fingerprint()
	for _, col := range t.Columns {
		key := "col|" + fp + "|" + col.Name
		if v, ok := c.Get(key); ok {
			col.SetStats(v.(ColumnDerived).Stats)
			continue
		}
		st := col.Stats()
		c.Put(key, ColumnDerived{Stats: st, Info: feature.FromStats(st, col.Type)},
			columnDerivedSize+int64(len(key)))
	}
}

// ColumnInfo returns the cached feature-extraction summary for one of
// t's columns, computing and caching it on a miss.
func ColumnInfo(c *Cache, t *dataset.Table, name string) (feature.ColumnInfo, bool) {
	col := t.Column(name)
	if col == nil {
		return feature.ColumnInfo{}, false
	}
	if c == nil {
		return feature.FromColumn(col), true
	}
	key := "col|" + t.Fingerprint() + "|" + name
	if v, ok := c.Get(key); ok {
		return v.(ColumnDerived).Info, true
	}
	st := col.Stats()
	d := ColumnDerived{Stats: st, Info: feature.FromStats(st, col.Type)}
	c.Put(key, d, columnDerivedSize+int64(len(key)))
	return d.Info, true
}
