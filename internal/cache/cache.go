// Package cache is DeepEye's stdlib-only serving cache: a sharded,
// byte-budgeted LRU keyed by table content fingerprints, with
// singleflight-style request coalescing so N concurrent identical
// requests trigger exactly one computation.
//
// The selection pipeline is deterministic over immutable tables — the
// same content, options, and k always produce the same top-k — so the
// hot path of the "millions of users" serving story (dashboards
// re-requesting the same dataset) is memoizable end to end. The cache
// stores three kinds of entries, all keyed through the table
// fingerprint (dataset.Table.Fingerprint): final TopK/Query results,
// ranked candidate sets (so a different k reuses the dominance graph),
// and per-column derived statistics (see prime.go).
//
// The byte budget is hard-partitioned across 16 shards, so a single
// entry can be at most MaxBytes/16; anything larger is simply not
// cached and recomputed per request. Size MaxBytes with the largest
// ranked candidate set in mind (the server default of 256 MiB admits
// entries up to 16 MiB).
//
// Hit/miss/eviction/coalesced counters and entry/byte gauges are
// exported on the obs registry (and thus GET /metrics) under
// deepeye_cache_* with a cache="<name>" label.
package cache

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"strings"
	"sync"

	"github.com/deepeye/deepeye/internal/obs"
)

// numShards is the fixed shard count: enough to keep mutex contention
// negligible at serving concurrency while keeping the structure flat.
const numShards = 16

// Metric names exported on the obs registry, labeled cache="<name>".
const (
	metricHits      = "deepeye_cache_hits_total"
	metricMisses    = "deepeye_cache_misses_total"
	metricEvictions = "deepeye_cache_evictions_total"
	metricCoalesced = "deepeye_cache_coalesced_total"
	metricInvalid   = "deepeye_cache_invalidations_total"
	metricEntries   = "deepeye_cache_entries"
	metricBytes     = "deepeye_cache_bytes"
)

// Config configures a Cache.
type Config struct {
	// Name labels the cache's metrics (cache="<name>").
	Name string
	// MaxBytes is the total byte budget across all shards; at least
	// numShards bytes. The per-entry size is caller-estimated.
	MaxBytes int64
	// Registry receives the cache's metrics; nil uses obs.Default.
	Registry *obs.Registry
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Evictions, Coalesced uint64
	Entries                            int
	Bytes                              int64
}

type entry struct {
	key  string
	val  any
	size int64
}

// flight is one in-progress computation that concurrent identical
// requests coalesce onto.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

type shard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	bytes    int64
	maxBytes int64
	flights  map[string]*flight
}

// Cache is a sharded LRU with request coalescing. Safe for concurrent
// use. Values are shared between callers — treat them as immutable.
type Cache struct {
	shards [numShards]*shard

	hits, misses, evictions, coalesced, invalidations *obs.Counter
	entries, bytes                                    *obs.Gauge
}

// New builds a cache with cfg.MaxBytes split evenly across the shards.
func New(cfg Config) *Cache {
	if cfg.MaxBytes < numShards {
		cfg.MaxBytes = numShards
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	c := &Cache{
		hits:      reg.Counter(metricHits, "Cache hits.", "cache", cfg.Name),
		misses:    reg.Counter(metricMisses, "Cache misses.", "cache", cfg.Name),
		evictions: reg.Counter(metricEvictions, "Cache evictions under byte pressure.", "cache", cfg.Name),
		coalesced: reg.Counter(metricCoalesced, "Requests coalesced onto an in-flight computation.", "cache", cfg.Name),
		invalidations: reg.Counter(metricInvalid,
			"Entries dropped by targeted invalidation (retired dataset fingerprints).", "cache", cfg.Name),
		entries: reg.Gauge(metricEntries, "Live cache entries.", "cache", cfg.Name),
		bytes:   reg.Gauge(metricBytes, "Estimated bytes held by the cache.", "cache", cfg.Name),
	}
	per := cfg.MaxBytes / numShards
	for i := range c.shards {
		c.shards[i] = &shard{
			ll:       list.New(),
			items:    make(map[string]*list.Element),
			maxBytes: per,
			flights:  make(map[string]*flight),
		}
	}
	return c
}

func (c *Cache) shardOf(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%numShards]
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most recently used.
func (c *Cache) Get(key string) (any, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	sh.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	sh.mu.Unlock()
	c.hits.Inc()
	return v, true
}

// Put inserts (or replaces) key with a caller-estimated size, evicting
// least recently used entries past the shard's byte budget. Entries
// larger than a whole shard are not cached.
func (c *Cache) Put(key string, val any, size int64) {
	if size < 1 {
		size = 1
	}
	sh := c.shardOf(key)
	if size > sh.maxBytes {
		return
	}
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry)
		sh.bytes += size - e.size
		e.val, e.size = val, size
		sh.ll.MoveToFront(el)
	} else {
		sh.items[key] = sh.ll.PushFront(&entry{key: key, val: val, size: size})
		sh.bytes += size
		c.entries.Inc()
	}
	var evicted int
	for sh.bytes > sh.maxBytes && sh.ll.Len() > 0 {
		back := sh.ll.Back()
		e := back.Value.(*entry)
		sh.ll.Remove(back)
		delete(sh.items, e.key)
		sh.bytes -= e.size
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		for i := 0; i < evicted; i++ {
			c.entries.Dec()
		}
	}
	c.syncBytesGauge()
}

// Remove drops key if present.
func (c *Cache) Remove(key string) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if ok {
		e := el.Value.(*entry)
		sh.ll.Remove(el)
		delete(sh.items, key)
		sh.bytes -= e.size
	}
	sh.mu.Unlock()
	if ok {
		c.entries.Dec()
		c.syncBytesGauge()
	}
}

// RemoveFunc drops every entry whose key matches, returning how many
// were dropped. It scans all shards under their locks — O(entries) —
// which is the point: a targeted invalidation (one dataset's retired
// fingerprint) reclaims exactly that dataset's entries and leaves the
// rest of the working set warm, where Purge would cold-start every
// dataset the server is holding.
func (c *Cache) RemoveFunc(match func(key string) bool) int {
	removed := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		var next *list.Element
		for el := sh.ll.Front(); el != nil; el = next {
			next = el.Next()
			e := el.Value.(*entry)
			if !match(e.key) {
				continue
			}
			sh.ll.Remove(el)
			delete(sh.items, e.key)
			sh.bytes -= e.size
			removed++
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		c.invalidations.Add(removed)
		for i := 0; i < removed; i++ {
			c.entries.Dec()
		}
		c.syncBytesGauge()
	}
	return removed
}

// RemoveFingerprint drops every entry keyed under the given table
// content fingerprint — the topk|, rank|, query|, and col| families
// all embed the fingerprint as the key's second |-separated field.
// Called when a live dataset appends rows (the old fingerprint will
// never be requested again by that dataset) or is deleted/evicted.
// Content-addressed entries are never wrong, so this is purely a
// byte-budget reclaim: if a second registered dataset happens to hold
// identical content, its next request recomputes and re-caches.
func (c *Cache) RemoveFingerprint(fp string) int {
	if fp == "" {
		return 0
	}
	return c.RemoveFunc(func(key string) bool {
		i := strings.IndexByte(key, '|')
		if i < 0 {
			return false
		}
		rest := key[i+1:]
		if j := strings.IndexByte(rest, '|'); j >= 0 {
			rest = rest[:j]
		}
		return rest == fp
	})
}

// Purge drops every entry (in-flight computations are unaffected).
func (c *Cache) Purge() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		n := sh.ll.Len()
		sh.ll.Init()
		sh.items = make(map[string]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
		for i := 0; i < n; i++ {
			c.entries.Dec()
		}
	}
	c.syncBytesGauge()
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the estimated bytes held.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// CacheStats snapshots the counters and occupancy.
func (c *Cache) CacheStats() Stats {
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Coalesced: c.coalesced.Value(),
		Entries:   c.Len(),
		Bytes:     c.Bytes(),
	}
}

// syncBytesGauge refreshes the bytes gauge from the shard totals; it
// runs outside the shard locks, so the gauge is eventually consistent
// under concurrent writes (the counters, not the gauge, are exact).
func (c *Cache) syncBytesGauge() { c.bytes.Set(c.Bytes()) }

// errFlightPanicked marks a computation that panicked; waiters see it
// instead of a spurious nil result.
var errFlightPanicked = errors.New("cache: coalesced computation panicked")

// Do returns the cached value for key, coalescing concurrent misses:
// the first caller (the leader) runs compute under its own ctx; every
// concurrent caller with the same key waits for that one computation
// instead of starting its own. Successful results are cached with the
// size compute reports; errors are not cached.
//
// hit reports whether the value came from the cache or a coalesced
// computation rather than this caller's own compute. A waiter whose own
// ctx expires returns ctx.Err() immediately without abandoning the
// leader; if the leader fails with a context error (its request was
// cancelled), waiters whose contexts are still live retry — one of them
// becomes the new leader — so one cancelled request can never poison
// its coalesced followers.
func (c *Cache) Do(ctx context.Context, key string, compute func(context.Context) (val any, size int64, err error)) (val any, hit bool, err error) {
	sh := c.shardOf(key)
	for {
		sh.mu.Lock()
		if el, ok := sh.items[key]; ok {
			sh.ll.MoveToFront(el)
			v := el.Value.(*entry).val
			sh.mu.Unlock()
			c.hits.Inc()
			return v, true, nil
		}
		if f, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			c.coalesced.Inc()
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case <-f.done:
			}
			if f.err == nil {
				return f.val, true, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				continue // leader's request died, ours is live: retry
			}
			return nil, false, f.err
		}
		f := &flight{done: make(chan struct{}), err: errFlightPanicked}
		sh.flights[key] = f
		sh.mu.Unlock()
		c.misses.Inc()

		var size int64
		func() {
			defer func() {
				sh.mu.Lock()
				delete(sh.flights, key)
				sh.mu.Unlock()
				close(f.done)
			}()
			f.val, size, f.err = compute(ctx)
		}()
		if f.err == nil {
			c.Put(key, f.val, size)
		}
		return f.val, false, f.err
	}
}
