// Concurrency suite for the sharded cache, written to run under
// -race: parallel hits and misses across shards, coalescing with many
// waiters, eviction under byte pressure while readers are active, and
// fingerprint-keyed invalidation when a same-named table is reloaded
// with different content.
package cache

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/deepeye/deepeye/internal/dataset"
)

func TestConcurrentHitsAndMissesAcrossShards(t *testing.T) {
	c := newTestCache(1 << 20)
	const goroutines = 16
	const keys = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%keys)
				if v, ok := c.Get(k); ok {
					if v.(string) != k {
						t.Errorf("Get(%s) = %v", k, v)
						return
					}
				} else {
					c.Put(k, k, 16)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	if c.Len() > keys {
		t.Errorf("Len = %d > distinct keys %d", c.Len(), keys)
	}
}

func TestConcurrentDoManyKeys(t *testing.T) {
	c := newTestCache(1 << 20)
	var computes atomic.Int64
	const keys = 8
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("key-%d", (g+i)%keys)
				v, _, err := c.Do(context.Background(), k, func(context.Context) (any, int64, error) {
					computes.Add(1)
					return k, 16, nil
				})
				if err != nil || v.(string) != k {
					t.Errorf("Do(%s) = %v, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every key computes at least once; coalescing and caching bound the
	// total far below the call count.
	if n := computes.Load(); n < keys || n > keys*4 {
		t.Errorf("computes = %d for %d keys and %d calls", n, keys, goroutines*50)
	}
}

func TestConcurrentEvictionUnderBytePressure(t *testing.T) {
	// Tiny budget so writers constantly evict while readers scan.
	c := newTestCache(16 * 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("w%d-%d", g, i)
				c.Put(k, i, 64)
				c.Get(k)
				c.Get(fmt.Sprintf("w%d-%d", (g+1)%8, i/2))
			}
		}(g)
	}
	wg.Wait()
	st := c.CacheStats()
	if st.Evictions == 0 {
		t.Error("no evictions under byte pressure")
	}
	if got, max := c.Bytes(), int64(16*256); got > max {
		t.Errorf("Bytes = %d exceeds budget %d", got, max)
	}
	if st.Entries != c.Len() {
		t.Errorf("stats entries %d != Len %d", st.Entries, c.Len())
	}
}

func TestConcurrentPrimeSharedTable(t *testing.T) {
	c := newTestCache(1 << 20)
	tab, err := dataset.FromCSV("t", strings.NewReader("a,b,c\n1,x,2020-01-02\n2,y,2020-02-03\n3,z,2020-03-04\n"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			PrimeTable(c, tab)
			for _, col := range tab.Columns {
				col.Stats()
			}
		}()
	}
	wg.Wait()
	if c.Len() != tab.NumCols() {
		t.Errorf("entries = %d, want %d", c.Len(), tab.NumCols())
	}
}

// TestReloadedTableInvalidation is the cache-level half of the
// invalidation story: a table reloaded under the same name with
// different content fingerprints differently, so its entries are
// disjoint from the stale ones — readers of the old table keep their
// (still correct for that content) entries, new content computes fresh.
func TestReloadedTableInvalidation(t *testing.T) {
	c := newTestCache(1 << 20)
	load := func(csv string) *dataset.Table {
		tab, err := dataset.FromCSV("same-name", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	v1 := load("city,pop\nBeijing,21\nShanghai,24\n")
	v2 := load("city,pop\nBeijing,99\nShanghai,24\n")
	if v1.Fingerprint() == v2.Fingerprint() {
		t.Fatal("different content fingerprints collide")
	}
	results := map[string]string{}
	for _, tab := range []*dataset.Table{v1, v2} {
		key := "topk|" + tab.Fingerprint()
		fp := tab.Fingerprint()
		v, _, err := c.Do(context.Background(), key, func(context.Context) (any, int64, error) {
			return "answer-for-" + fp, 32, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		results[fp] = v.(string)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	// Re-asking for v1 must still hit v1's entry, not v2's.
	v, hit, _ := c.Do(context.Background(), "topk|"+v1.Fingerprint(), func(context.Context) (any, int64, error) {
		t.Error("v1 entry lost")
		return nil, 0, nil
	})
	if !hit || v.(string) != "answer-for-"+v1.Fingerprint() {
		t.Errorf("v1 reread = %v, hit=%t", v, hit)
	}
}
