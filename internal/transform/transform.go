// Package transform implements DeepEye's data operations (paper §II-A):
// binning of temporal and numerical columns, grouping of categorical
// columns, the three aggregation operators {SUM, AVG, CNT}, and ORDER BY —
// producing the transformed series (X′, Y′) that visualization nodes carry.
package transform

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/deepeye/deepeye/internal/dataset"
)

// Agg is one of the paper's aggregation operators.
type Agg int

const (
	// AggNone leaves Y untransformed (raw X-Y pairs, e.g. scatter plots).
	AggNone Agg = iota
	// AggSum sums the Y values falling into each group or bin.
	AggSum
	// AggAvg averages the Y values in each group or bin.
	AggAvg
	// AggCnt counts the tuples in each group or bin.
	AggCnt
)

// String returns the paper's operator spelling.
func (a Agg) String() string {
	switch a {
	case AggNone:
		return "NONE"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCnt:
		return "CNT"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// BinUnit is a temporal binning granularity (paper: BIN X BY
// {MINUTE, HOUR, DAY, WEEK, MONTH, QUARTER, YEAR}).
type BinUnit int

const (
	ByMinute BinUnit = iota
	ByHour
	ByDay
	ByWeek
	ByMonth
	ByQuarter
	ByYear
	// Periodic units fold the calendar onto itself: the paper's Fig. 1(c)
	// bins a year of flights "BY HOUR" into 24 buckets (Table II reports
	// |X′| = 24), i.e. by hour of day. These units make that chart — and
	// weekday/seasonal profiles — expressible.
	ByHourOfDay
	ByDayOfWeek
	ByMonthOfYear
)

// String returns the unit keyword.
func (u BinUnit) String() string {
	switch u {
	case ByMinute:
		return "MINUTE"
	case ByHour:
		return "HOUR"
	case ByDay:
		return "DAY"
	case ByWeek:
		return "WEEK"
	case ByMonth:
		return "MONTH"
	case ByQuarter:
		return "QUARTER"
	case ByYear:
		return "YEAR"
	case ByHourOfDay:
		return "HOUR_OF_DAY"
	case ByDayOfWeek:
		return "DAY_OF_WEEK"
	case ByMonthOfYear:
		return "MONTH_OF_YEAR"
	default:
		return fmt.Sprintf("BinUnit(%d)", int(u))
	}
}

// AllBinUnits lists the seven absolute temporal granularities in order.
var AllBinUnits = []BinUnit{ByMinute, ByHour, ByDay, ByWeek, ByMonth, ByQuarter, ByYear}

// PeriodicBinUnits lists the calendar-folding granularities.
var PeriodicBinUnits = []BinUnit{ByHourOfDay, ByDayOfWeek, ByMonthOfYear}

// Kind discriminates the transform applied to the X column.
type Kind int

const (
	// KindNone applies no transform: raw X values pass through.
	KindNone Kind = iota
	// KindGroup groups by the categorical (or temporal) X values.
	KindGroup
	// KindBinUnit bins a temporal X by a calendar unit.
	KindBinUnit
	// KindBinCount bins a numerical X into N equal-width buckets.
	KindBinCount
	// KindBinUDF bins a numerical X by a user-defined function.
	KindBinUDF
)

// UDF is a user-defined binning function: it maps a numeric value to a
// bucket label and a sort key for that bucket.
type UDF struct {
	Name string
	Fn   func(v float64) (label string, order float64)
}

// Spec describes the full transform of an (X, Y) column pair into
// (X′, Y′): how X is grouped or binned and how Y is aggregated.
type Spec struct {
	Kind Kind
	Unit BinUnit // when Kind == KindBinUnit
	N    int     // when Kind == KindBinCount
	UDF  *UDF    // when Kind == KindBinUDF
	Agg  Agg
}

// String renders the spec in the paper's language fragment form.
func (s Spec) String() string {
	switch s.Kind {
	case KindNone:
		return fmt.Sprintf("RAW,%s", s.Agg)
	case KindGroup:
		return fmt.Sprintf("GROUP,%s", s.Agg)
	case KindBinUnit:
		return fmt.Sprintf("BIN BY %s,%s", s.Unit, s.Agg)
	case KindBinCount:
		return fmt.Sprintf("BIN INTO %d,%s", s.N, s.Agg)
	case KindBinUDF:
		name := "udf"
		if s.UDF != nil {
			name = s.UDF.Name
		}
		return fmt.Sprintf("BIN BY UDF(%s),%s", name, s.Agg)
	default:
		return "?"
	}
}

// Result is the transformed series (X′, Y′): one entry per group/bin in
// XLabels (display form) with XOrder carrying a numeric sort key when one
// exists, and Y the aggregated values. SourceRows[i] lists the input row
// indices that fell into bucket i (used by postponed operations in the
// progressive optimizer).
type Result struct {
	XLabels    []string
	XOrder     []float64 // numeric/temporal sort keys; NaN when unordered
	Y          []float64
	SourceRows [][]int
	InputRows  int // number of non-null input tuples |X|
}

// Len returns the transformed cardinality |X′|.
func (r *Result) Len() int { return len(r.XLabels) }

// bucket accumulates per-key aggregation state.
type bucket struct {
	label string
	order float64
	sum   float64
	cnt   int
	rows  []int
}

// Apply executes the spec over the X and Y columns of a table. For
// Agg == AggCnt, y may equal x (one-column histograms, paper §II-B
// one-column extension). The result buckets are sorted by their natural
// order (numeric sort key when present, else label).
func Apply(x, y *dataset.Column, spec Spec) (*Result, error) {
	if x == nil {
		return nil, fmt.Errorf("transform: nil x column")
	}
	if spec.Agg != AggCnt && spec.Agg != AggNone {
		if y == nil {
			return nil, fmt.Errorf("transform: %s requires a y column", spec.Agg)
		}
		if y.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: %s requires numerical y, got %s", spec.Agg, y.Type)
		}
	}
	switch spec.Kind {
	case KindNone:
		return applyRaw(x, y, spec)
	case KindGroup:
		return applyKeyed(x, y, spec, groupKey)
	case KindBinUnit:
		if x.Type != dataset.Temporal {
			return nil, fmt.Errorf("transform: BIN BY %s requires temporal x, got %s", spec.Unit, x.Type)
		}
		return applyKeyed(x, y, spec, func(c *dataset.Column, i int) (string, float64, bool) {
			return unitKey(c.Times[i], spec.Unit)
		})
	case KindBinCount:
		if x.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: BIN INTO N requires numerical x, got %s", x.Type)
		}
		return applyBinCount(x, y, spec)
	case KindBinUDF:
		if spec.UDF == nil || spec.UDF.Fn == nil {
			return nil, fmt.Errorf("transform: BIN BY UDF requires a udf")
		}
		if x.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: BIN BY UDF requires numerical x, got %s", x.Type)
		}
		return applyKeyed(x, y, spec, func(c *dataset.Column, i int) (string, float64, bool) {
			label, order := spec.UDF.Fn(c.Nums[i])
			return label, order, true
		})
	default:
		return nil, fmt.Errorf("transform: unknown kind %d", spec.Kind)
	}
}

// applyRaw passes X through untransformed; Y must be numeric (or nil for
// count-of-self, which is meaningless raw, so it is rejected).
func applyRaw(x, y *dataset.Column, spec Spec) (*Result, error) {
	if spec.Agg != AggNone {
		return nil, fmt.Errorf("transform: raw pass-through cannot aggregate with %s", spec.Agg)
	}
	if y == nil || y.Type != dataset.Numerical {
		return nil, fmt.Errorf("transform: raw pass-through requires numerical y")
	}
	res := &Result{}
	for i := range x.Raw {
		if x.Null[i] || y.Null[i] {
			continue
		}
		res.InputRows++
		res.XLabels = append(res.XLabels, x.Raw[i])
		res.XOrder = append(res.XOrder, xOrderValue(x, i))
		res.Y = append(res.Y, y.Nums[i])
		res.SourceRows = append(res.SourceRows, []int{i})
	}
	return res, nil
}

// xOrderValue returns the sort key of the raw X cell at row i.
func xOrderValue(x *dataset.Column, i int) float64 {
	switch x.Type {
	case dataset.Numerical:
		return x.Nums[i]
	case dataset.Temporal:
		return float64(x.Times[i].Unix())
	default:
		return math.NaN()
	}
}

// keyFn maps a row of the X column to a bucket (label, sort key); ok=false
// skips the row.
type keyFn func(c *dataset.Column, i int) (label string, order float64, ok bool)

// groupKey buckets by the raw value (GROUP BY X).
func groupKey(c *dataset.Column, i int) (string, float64, bool) {
	return c.Raw[i], xOrderValue(c, i), true
}

// unitKey buckets a timestamp by a calendar unit. The label is
// human-readable; the order key is the bucket's start time.
func unitKey(ts time.Time, u BinUnit) (string, float64, bool) {
	var start time.Time
	var label string
	switch u {
	case ByMinute:
		start = ts.Truncate(time.Minute)
		label = start.Format("2006-01-02 15:04")
	case ByHour:
		start = ts.Truncate(time.Hour)
		label = start.Format("2006-01-02 15:00")
	case ByDay:
		start = time.Date(ts.Year(), ts.Month(), ts.Day(), 0, 0, 0, 0, ts.Location())
		label = start.Format("2006-01-02")
	case ByWeek:
		// ISO-ish week starting Monday.
		wd := (int(ts.Weekday()) + 6) % 7
		day := time.Date(ts.Year(), ts.Month(), ts.Day(), 0, 0, 0, 0, ts.Location())
		start = day.AddDate(0, 0, -wd)
		label = start.Format("wk 2006-01-02")
	case ByMonth:
		start = time.Date(ts.Year(), ts.Month(), 1, 0, 0, 0, 0, ts.Location())
		label = start.Format("2006-01")
	case ByQuarter:
		q := (int(ts.Month()) - 1) / 3
		start = time.Date(ts.Year(), time.Month(q*3+1), 1, 0, 0, 0, 0, ts.Location())
		label = fmt.Sprintf("%dQ%d", ts.Year(), q+1)
	case ByYear:
		start = time.Date(ts.Year(), 1, 1, 0, 0, 0, 0, ts.Location())
		label = start.Format("2006")
	case ByHourOfDay:
		h := ts.Hour()
		return fmt.Sprintf("%02d:00", h), float64(h), true
	case ByDayOfWeek:
		wd := (int(ts.Weekday()) + 6) % 7 // Monday-first
		return ts.Weekday().String()[:3], float64(wd), true
	case ByMonthOfYear:
		m := int(ts.Month())
		return ts.Month().String()[:3], float64(m), true
	default:
		return "", 0, false
	}
	return label, float64(start.Unix()), true
}

// HourOfDay is a convenience key used by the paper's Figure 1(c): bin by
// the hour-of-day (00..23) rather than by absolute hour. It is exposed as
// a UDF-style unit because the paper's Q1 bins "scheduled BY HOUR" and the
// resulting chart has 24 buckets.
func HourOfDay(ts time.Time) (string, float64) {
	h := ts.Hour()
	return fmt.Sprintf("%02d:00", h), float64(h)
}

// applyKeyed buckets rows with key and aggregates.
func applyKeyed(x, y *dataset.Column, spec Spec, key keyFn) (*Result, error) {
	buckets := make(map[string]*bucket)
	var orderedKeys []string
	inputRows := 0
	for i := range x.Raw {
		if x.Null[i] {
			continue
		}
		needY := spec.Agg == AggSum || spec.Agg == AggAvg
		if needY && (y == nil || y.Null[i]) {
			continue
		}
		label, order, ok := key(x, i)
		if !ok {
			continue
		}
		inputRows++
		b := buckets[label]
		if b == nil {
			b = &bucket{label: label, order: order}
			buckets[label] = b
			orderedKeys = append(orderedKeys, label)
		}
		b.cnt++
		b.rows = append(b.rows, i)
		if needY {
			b.sum += y.Nums[i]
		}
	}
	out := make([]*bucket, 0, len(buckets))
	for _, k := range orderedKeys {
		out = append(out, buckets[k])
	}
	sort.Slice(out, func(a, b int) bool {
		oa, ob := out[a].order, out[b].order
		switch {
		case !math.IsNaN(oa) && !math.IsNaN(ob) && oa != ob:
			return oa < ob
		case math.IsNaN(oa) != math.IsNaN(ob):
			return !math.IsNaN(oa)
		default:
			return out[a].label < out[b].label
		}
	})
	res := &Result{InputRows: inputRows}
	for _, b := range out {
		res.XLabels = append(res.XLabels, b.label)
		res.XOrder = append(res.XOrder, b.order)
		res.SourceRows = append(res.SourceRows, b.rows)
		switch spec.Agg {
		case AggSum:
			res.Y = append(res.Y, b.sum)
		case AggAvg:
			res.Y = append(res.Y, b.sum/float64(b.cnt))
		case AggCnt, AggNone:
			res.Y = append(res.Y, float64(b.cnt))
		}
	}
	return res, nil
}

// applyBinCount splits a numerical X into N equal-width intervals
// [lo, lo+w), …, with the final interval closed.
func applyBinCount(x, y *dataset.Column, spec Spec) (*Result, error) {
	n := spec.N
	if n <= 0 {
		n = DefaultBinCount
	}
	s := x.Stats()
	if s.N == 0 {
		return &Result{}, nil
	}
	lo, hi := s.Min, s.Max
	if lo == hi {
		// Degenerate range: single bucket.
		return applyKeyed(x, y, spec, func(c *dataset.Column, i int) (string, float64, bool) {
			return fmt.Sprintf("[%g, %g]", lo, hi), lo, true
		})
	}
	w := (hi - lo) / float64(n)
	return applyKeyed(x, y, spec, func(c *dataset.Column, i int) (string, float64, bool) {
		v := c.Nums[i]
		idx := int((v - lo) / w)
		if idx >= n {
			idx = n - 1 // hi falls into the last bucket
		}
		bLo := lo + w*float64(idx)
		return fmt.Sprintf("[%.4g, %.4g)", bLo, bLo+w), bLo, true
	})
}

// DefaultBinCount is the bucket count for "default buckets" in the
// paper's search-space enumeration (BIN X INTO N with unspecified N).
const DefaultBinCount = 10

// SortAxis identifies which axis ORDER BY sorts.
type SortAxis int

const (
	// SortNone leaves bucket order as produced by Apply.
	SortNone SortAxis = iota
	// SortX orders buckets by X′ (numeric key when present, else label).
	SortX
	// SortY orders buckets by ascending Y′.
	SortY
)

// String returns the axis keyword.
func (a SortAxis) String() string {
	switch a {
	case SortNone:
		return "NONE"
	case SortX:
		return "X"
	case SortY:
		return "Y"
	default:
		return fmt.Sprintf("SortAxis(%d)", int(a))
	}
}

// OrderBy sorts the result in place along the given axis. Apply already
// yields X-order, so SortX is idempotent; SortY reorders by value.
func OrderBy(r *Result, axis SortAxis) {
	type row struct {
		label string
		order float64
		y     float64
		src   []int
	}
	hasSrc := len(r.SourceRows) == r.Len()
	rows := make([]row, r.Len())
	for i := range rows {
		rows[i] = row{label: r.XLabels[i], order: r.XOrder[i], y: r.Y[i]}
		if hasSrc {
			rows[i].src = r.SourceRows[i]
		}
	}
	switch axis {
	case SortX:
		sort.SliceStable(rows, func(a, b int) bool {
			oa, ob := rows[a].order, rows[b].order
			switch {
			case !math.IsNaN(oa) && !math.IsNaN(ob) && oa != ob:
				return oa < ob
			case math.IsNaN(oa) != math.IsNaN(ob):
				return !math.IsNaN(oa)
			default:
				return rows[a].label < rows[b].label
			}
		})
	case SortY:
		sort.SliceStable(rows, func(a, b int) bool { return rows[a].y < rows[b].y })
	default:
		return
	}
	for i, rw := range rows {
		r.XLabels[i] = rw.label
		r.XOrder[i] = rw.order
		r.Y[i] = rw.y
		if hasSrc {
			r.SourceRows[i] = rw.src
		}
	}
}
