// Package transform implements DeepEye's data operations (paper §II-A):
// binning of temporal and numerical columns, grouping of categorical
// columns, the three aggregation operators {SUM, AVG, CNT}, and ORDER BY —
// producing the transformed series (X′, Y′) that visualization nodes carry.
//
// Bucket formation is split from aggregation: Bucketize computes the
// per-row bucket assignment for (X, spec) as a typed array pass — group
// keys are dictionary codes, calendar bins are integer arithmetic on
// Unix seconds, numeric bins are index arithmetic — with labels
// formatted once per bucket instead of once per row. ApplyBucketed then
// aggregates any Y column over a shared bucketing, which is how the
// batch executor and the progressive selector amortize one bucketing
// pass across every Y column, aggregate, and sort order (§V-B shared
// transformation).
package transform

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/deepeye/deepeye/internal/dataset"
)

// Agg is one of the paper's aggregation operators.
type Agg int

const (
	// AggNone leaves Y untransformed (raw X-Y pairs, e.g. scatter plots).
	AggNone Agg = iota
	// AggSum sums the Y values falling into each group or bin.
	AggSum
	// AggAvg averages the Y values in each group or bin.
	AggAvg
	// AggCnt counts the tuples in each group or bin.
	AggCnt
)

// String returns the paper's operator spelling.
func (a Agg) String() string {
	switch a {
	case AggNone:
		return "NONE"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCnt:
		return "CNT"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// BinUnit is a temporal binning granularity (paper: BIN X BY
// {MINUTE, HOUR, DAY, WEEK, MONTH, QUARTER, YEAR}).
type BinUnit int

const (
	ByMinute BinUnit = iota
	ByHour
	ByDay
	ByWeek
	ByMonth
	ByQuarter
	ByYear
	// Periodic units fold the calendar onto itself: the paper's Fig. 1(c)
	// bins a year of flights "BY HOUR" into 24 buckets (Table II reports
	// |X′| = 24), i.e. by hour of day. These units make that chart — and
	// weekday/seasonal profiles — expressible.
	ByHourOfDay
	ByDayOfWeek
	ByMonthOfYear
)

// String returns the unit keyword.
func (u BinUnit) String() string {
	switch u {
	case ByMinute:
		return "MINUTE"
	case ByHour:
		return "HOUR"
	case ByDay:
		return "DAY"
	case ByWeek:
		return "WEEK"
	case ByMonth:
		return "MONTH"
	case ByQuarter:
		return "QUARTER"
	case ByYear:
		return "YEAR"
	case ByHourOfDay:
		return "HOUR_OF_DAY"
	case ByDayOfWeek:
		return "DAY_OF_WEEK"
	case ByMonthOfYear:
		return "MONTH_OF_YEAR"
	default:
		return fmt.Sprintf("BinUnit(%d)", int(u))
	}
}

// AllBinUnits lists the seven absolute temporal granularities in order.
var AllBinUnits = []BinUnit{ByMinute, ByHour, ByDay, ByWeek, ByMonth, ByQuarter, ByYear}

// PeriodicBinUnits lists the calendar-folding granularities.
var PeriodicBinUnits = []BinUnit{ByHourOfDay, ByDayOfWeek, ByMonthOfYear}

// Kind discriminates the transform applied to the X column.
type Kind int

const (
	// KindNone applies no transform: raw X values pass through.
	KindNone Kind = iota
	// KindGroup groups by the categorical (or temporal) X values.
	KindGroup
	// KindBinUnit bins a temporal X by a calendar unit.
	KindBinUnit
	// KindBinCount bins a numerical X into N equal-width buckets.
	KindBinCount
	// KindBinUDF bins a numerical X by a user-defined function.
	KindBinUDF
)

// UDF is a user-defined binning function: it maps a numeric value to a
// bucket label and a sort key for that bucket.
type UDF struct {
	Name string
	Fn   func(v float64) (label string, order float64)
}

// Spec describes the full transform of an (X, Y) column pair into
// (X′, Y′): how X is grouped or binned and how Y is aggregated.
type Spec struct {
	Kind Kind
	Unit BinUnit // when Kind == KindBinUnit
	N    int     // when Kind == KindBinCount
	UDF  *UDF    // when Kind == KindBinUDF
	Agg  Agg
}

// String renders the spec in the paper's language fragment form.
func (s Spec) String() string {
	switch s.Kind {
	case KindNone:
		return fmt.Sprintf("RAW,%s", s.Agg)
	case KindGroup:
		return fmt.Sprintf("GROUP,%s", s.Agg)
	case KindBinUnit:
		return fmt.Sprintf("BIN BY %s,%s", s.Unit, s.Agg)
	case KindBinCount:
		return fmt.Sprintf("BIN INTO %d,%s", s.N, s.Agg)
	case KindBinUDF:
		name := "udf"
		if s.UDF != nil {
			name = s.UDF.Name
		}
		return fmt.Sprintf("BIN BY UDF(%s),%s", name, s.Agg)
	default:
		return "?"
	}
}

// Result is the transformed series (X′, Y′): one entry per group/bin in
// XLabels (display form) with XOrder carrying a numeric sort key when one
// exists, and Y the aggregated values. SourceRows[i] lists the input row
// indices that fell into bucket i (used by postponed operations in the
// progressive optimizer).
type Result struct {
	XLabels    []string
	XOrder     []float64 // numeric/temporal sort keys; NaN when unordered
	Y          []float64
	SourceRows [][]int
	InputRows  int // number of non-null input tuples |X|
}

// Len returns the transformed cardinality |X′|.
func (r *Result) Len() int { return len(r.XLabels) }

// Bucketing is the bucket-formation half of a transform, independent of
// the Y column and the aggregate: the sorted bucket axis
// (Labels/Order), per-bucket row counts over non-null X cells, the
// per-row bucket assignment (RowBucket[i] < 0 means row i has no
// bucket), and the number of assigned rows. One Bucketing serves every
// (Y, aggregate) combination over the same (X, spec) via ApplyBucketed.
type Bucketing struct {
	Labels    []string
	Order     []float64
	Counts    []int
	RowBucket []int32
	Input     int
}

// Len returns the number of buckets.
func (b *Bucketing) Len() int { return len(b.Labels) }

// Apply executes the spec over the X and Y columns of a table. For
// Agg == AggCnt, y may equal x (one-column histograms, paper §II-B
// one-column extension). The result buckets are sorted by their natural
// order (numeric sort key when present, else label).
func Apply(x, y *dataset.Column, spec Spec) (*Result, error) {
	if x == nil {
		return nil, fmt.Errorf("transform: nil x column")
	}
	needY := spec.Agg == AggSum || spec.Agg == AggAvg
	if needY {
		if y == nil {
			return nil, fmt.Errorf("transform: %s requires a y column", spec.Agg)
		}
		if y.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: %s requires numerical y, got %s", spec.Agg, y.Type)
		}
	}
	if spec.Kind == KindNone {
		return applyRaw(x, y, spec)
	}
	if spec.Kind == KindBinUDF && needY {
		if spec.UDF == nil || spec.UDF.Fn == nil {
			return nil, fmt.Errorf("transform: BIN BY UDF requires a udf")
		}
		if x.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: BIN BY UDF requires numerical x, got %s", x.Type)
		}
		// A UDF assigns a bucket's sort key from the first row that lands
		// in it, and under SUM/AVG "first" means the first row with a
		// non-null Y — a Y-dependent detail the shared bucketing cannot
		// know. Keep the per-row path for this case.
		return applyUDFNeedY(x, y, spec)
	}
	bk, err := Bucketize(x, spec)
	if err != nil {
		return nil, err
	}
	return ApplyBucketed(bk, y, spec, true), nil
}

// Bucketize runs the bucket-formation pass for (x, spec), ignoring
// spec.Agg. It validates the spec/type combination with the same rules
// as Apply.
func Bucketize(x *dataset.Column, spec Spec) (*Bucketing, error) {
	if x == nil {
		return nil, fmt.Errorf("transform: nil x column")
	}
	switch spec.Kind {
	case KindGroup:
		return bucketizeGroup(x), nil
	case KindBinUnit:
		if x.Type != dataset.Temporal {
			return nil, fmt.Errorf("transform: BIN BY %s requires temporal x, got %s", spec.Unit, x.Type)
		}
		return bucketizeUnit(x, spec.Unit), nil
	case KindBinCount:
		if x.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: BIN INTO N requires numerical x, got %s", x.Type)
		}
		return bucketizeBinCount(x, spec.N), nil
	case KindBinUDF:
		if spec.UDF == nil || spec.UDF.Fn == nil {
			return nil, fmt.Errorf("transform: BIN BY UDF requires a udf")
		}
		if x.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: BIN BY UDF requires numerical x, got %s", x.Type)
		}
		return bucketizeUDF(x, spec.UDF), nil
	default:
		return nil, fmt.Errorf("transform: unknown kind %d", spec.Kind)
	}
}

// ApplyBucketed aggregates y over a shared bucketing, producing the
// same Result as Apply(x, y, spec) for the bucketing's (x, spec). For
// CNT/NONE aggregates the result adopts the bucketing's Labels/Order
// slices — callers treat results as read-only, as they already do for
// results shared across sibling chart types. withSourceRows controls
// whether SourceRows is materialized (one arena allocation).
func ApplyBucketed(bk *Bucketing, y *dataset.Column, spec Spec, withSourceRows bool) *Result {
	nb := bk.Len()
	if spec.Agg != AggSum && spec.Agg != AggAvg {
		ys := make([]float64, nb)
		for b, c := range bk.Counts {
			ys[b] = float64(c)
		}
		res := &Result{XLabels: bk.Labels, XOrder: bk.Order, Y: ys, InputRows: bk.Input}
		if withSourceRows {
			res.SourceRows = sourceRowsAll(bk)
		}
		return res
	}

	sums := make([]float64, nb)
	ycnt := make([]int, nb)
	for i, b := range bk.RowBucket {
		if b < 0 || y.IsNull(i) {
			continue
		}
		sums[b] += y.NumAt(i)
		ycnt[b]++
	}
	// Buckets whose rows all have null Y never exist under the direct
	// per-row pass (a bucket is created by its first included row);
	// drop them here so the shared path matches bit for bit.
	kept := 0
	input := 0
	for _, c := range ycnt {
		if c > 0 {
			kept++
			input += c
		}
	}
	res := &Result{
		XLabels:   make([]string, 0, kept),
		XOrder:    make([]float64, 0, kept),
		Y:         make([]float64, 0, kept),
		InputRows: input,
	}
	remap := make([]int32, nb)
	for b := 0; b < nb; b++ {
		if ycnt[b] == 0 {
			remap[b] = -1
			continue
		}
		remap[b] = int32(res.Len())
		res.XLabels = append(res.XLabels, bk.Labels[b])
		res.XOrder = append(res.XOrder, bk.Order[b])
		if spec.Agg == AggSum {
			res.Y = append(res.Y, sums[b])
		} else {
			res.Y = append(res.Y, sums[b]/float64(ycnt[b]))
		}
	}
	if withSourceRows {
		res.SourceRows = sourceRowsFiltered(bk, y, remap, ycnt, kept, input)
	}
	return res
}

// sourceRowsAll materializes per-bucket row lists (ascending row order)
// from the row→bucket assignment into a single arena.
func sourceRowsAll(bk *Bucketing) [][]int {
	nb := bk.Len()
	arena := make([]int, bk.Input)
	out := make([][]int, nb)
	pos := make([]int, nb)
	off := 0
	for b, c := range bk.Counts {
		pos[b] = off
		out[b] = arena[off : off : off+c]
		off += c
	}
	for i, b := range bk.RowBucket {
		if b < 0 {
			continue
		}
		arena[pos[b]] = i
		out[b] = out[b][: len(out[b])+1 : cap(out[b])]
		pos[b]++
	}
	return out
}

// sourceRowsFiltered is sourceRowsAll restricted to rows with non-null
// Y, over the kept (remapped) buckets.
func sourceRowsFiltered(bk *Bucketing, y *dataset.Column, remap []int32, ycnt []int, kept, input int) [][]int {
	arena := make([]int, input)
	out := make([][]int, kept)
	pos := make([]int, kept)
	off := 0
	for b, nb := range remap {
		if nb < 0 {
			continue
		}
		pos[nb] = off
		out[nb] = arena[off : off : off+ycnt[b]]
		off += ycnt[b]
	}
	for i, b := range bk.RowBucket {
		if b < 0 || remap[b] < 0 || y.IsNull(i) {
			continue
		}
		nb := remap[b]
		arena[pos[nb]] = i
		out[nb] = out[nb][: len(out[nb])+1 : cap(out[nb])]
		pos[nb]++
	}
	return out
}

// applyRaw passes X through untransformed; Y must be numeric (or nil for
// count-of-self, which is meaningless raw, so it is rejected).
func applyRaw(x, y *dataset.Column, spec Spec) (*Result, error) {
	if spec.Agg != AggNone {
		return nil, fmt.Errorf("transform: raw pass-through cannot aggregate with %s", spec.Agg)
	}
	if y == nil || y.Type != dataset.Numerical {
		return nil, fmt.Errorf("transform: raw pass-through requires numerical y")
	}
	n := x.Len()
	cnt := 0
	for i := 0; i < n; i++ {
		if !x.IsNull(i) && !y.IsNull(i) {
			cnt++
		}
	}
	res := &Result{
		XLabels:    make([]string, 0, cnt),
		XOrder:     make([]float64, 0, cnt),
		Y:          make([]float64, 0, cnt),
		SourceRows: make([][]int, 0, cnt),
		InputRows:  cnt,
	}
	arena := make([]int, cnt)
	k := 0
	for i := 0; i < n; i++ {
		if x.IsNull(i) || y.IsNull(i) {
			continue
		}
		res.XLabels = append(res.XLabels, x.RawAt(i))
		res.XOrder = append(res.XOrder, xOrderValue(x, i))
		res.Y = append(res.Y, y.NumAt(i))
		arena[k] = i
		res.SourceRows = append(res.SourceRows, arena[k:k+1:k+1])
		k++
	}
	return res, nil
}

// xOrderValue returns the sort key of the raw X cell at row i.
func xOrderValue(x *dataset.Column, i int) float64 {
	switch x.Type {
	case dataset.Numerical:
		return x.NumAt(i)
	case dataset.Temporal:
		return float64(x.SecAt(i))
	default:
		return math.NaN()
	}
}

// bucketizeGroup buckets rows by their dictionary code: one array pass,
// no string hashing (GROUP BY X). The bucket label is the interned raw
// string; the sort key is the cell's numeric interpretation (identical
// for every row of a bucket, since equal raws parse equally).
func bucketizeGroup(x *dataset.Column) *Bucketing {
	n := x.Len()
	rb := make([]int32, n)
	codeBucket := make([]int32, x.DictLen())
	for i := range codeBucket {
		codeBucket[i] = -1
	}
	codes := x.Codes()
	bk := &Bucketing{RowBucket: rb}
	for i := 0; i < n; i++ {
		if x.IsNull(i) {
			rb[i] = -1
			continue
		}
		code := codes[i]
		b := codeBucket[code]
		if b < 0 {
			b = int32(len(bk.Labels))
			codeBucket[code] = b
			bk.Labels = append(bk.Labels, x.DictAt(code))
			bk.Order = append(bk.Order, xOrderValue(x, i))
			bk.Counts = append(bk.Counts, 0)
		}
		rb[i] = b
		bk.Counts[b]++
		bk.Input++
	}
	sortBuckets(bk)
	return bk
}

// bucketizeUnit bins a temporal column by a calendar unit: the per-row
// work is integer arithmetic on Unix seconds (proleptic Gregorian, UTC
// — the granularity temporal cells are stored at), and labels are
// formatted once per bucket from the bucket key.
func bucketizeUnit(x *dataset.Column, unit BinUnit) *Bucketing {
	n := x.Len()
	rb := make([]int32, n)
	bk := &Bucketing{RowBucket: rb}
	if !validUnit(unit) {
		// Matches the historical per-row behavior: an unknown unit
		// assigns no rows.
		for i := range rb {
			rb[i] = -1
		}
		return bk
	}
	secs := x.SecsSlice()
	keyBucket := make(map[int64]int32)
	var keys []int64
	for i := 0; i < n; i++ {
		if x.IsNull(i) {
			rb[i] = -1
			continue
		}
		k := unitRowKey(secs[i], unit)
		b, seen := keyBucket[k]
		if !seen {
			b = int32(len(keys))
			keyBucket[k] = b
			keys = append(keys, k)
			bk.Counts = append(bk.Counts, 0)
		}
		rb[i] = b
		bk.Counts[b]++
		bk.Input++
	}
	bk.Labels = make([]string, len(keys))
	bk.Order = make([]float64, len(keys))
	for b, k := range keys {
		bk.Labels[b], bk.Order[b] = unitBucket(k, unit)
	}
	sortBuckets(bk)
	return bk
}

// bucketizeBinCount splits a numerical X into N equal-width intervals
// [lo, lo+w), …, with the final interval closed. Bucket membership is
// index arithmetic per row; the interval label is formatted once per
// distinct index. Indices whose 4-significant-digit labels collide
// merge into one bucket, exactly as the per-row label-keyed pass did.
func bucketizeBinCount(x *dataset.Column, n int) *Bucketing {
	if n <= 0 {
		n = DefaultBinCount
	}
	nr := x.Len()
	rb := make([]int32, nr)
	bk := &Bucketing{RowBucket: rb}
	s := x.Stats()
	if s.N == 0 {
		for i := range rb {
			rb[i] = -1
		}
		return bk
	}
	lo, hi := s.Min, s.Max
	nums := x.NumsSlice()
	if lo == hi {
		// Degenerate range: single bucket.
		label := fmt.Sprintf("[%g, %g]", lo, hi)
		for i := 0; i < nr; i++ {
			if x.IsNull(i) {
				rb[i] = -1
				continue
			}
			rb[i] = 0
			bk.Input++
		}
		if bk.Input > 0 {
			bk.Labels = []string{label}
			bk.Order = []float64{lo}
			bk.Counts = []int{bk.Input}
		}
		return bk
	}
	w := (hi - lo) / float64(n)
	// idxBucket memoizes index→bucket; labelBucket catches distinct
	// indices formatting to the same label.
	var idxBucket []int32
	if n <= 1<<16 {
		idxBucket = make([]int32, n)
		for i := range idxBucket {
			idxBucket[i] = -1
		}
	}
	idxMap := map[int]int32(nil)
	if idxBucket == nil {
		idxMap = make(map[int]int32)
	}
	labelBucket := make(map[string]int32)
	for i := 0; i < nr; i++ {
		if x.IsNull(i) {
			rb[i] = -1
			continue
		}
		idx := int((nums[i] - lo) / w)
		if idx >= n {
			idx = n - 1 // hi falls into the last bucket
		}
		var b int32
		var seen bool
		if idxBucket != nil && idx >= 0 {
			b = idxBucket[idx]
			seen = b >= 0
		} else {
			b, seen = idxMap[idx]
		}
		if !seen {
			bLo := lo + w*float64(idx)
			label := fmt.Sprintf("[%.4g, %.4g)", bLo, bLo+w)
			if lb, ok := labelBucket[label]; ok {
				b = lb
			} else {
				b = int32(len(bk.Labels))
				labelBucket[label] = b
				bk.Labels = append(bk.Labels, label)
				bk.Order = append(bk.Order, bLo)
				bk.Counts = append(bk.Counts, 0)
			}
			if idxBucket != nil && idx >= 0 {
				idxBucket[idx] = b
			} else {
				idxMap[idx] = b
			}
		}
		rb[i] = b
		bk.Counts[b]++
		bk.Input++
	}
	sortBuckets(bk)
	return bk
}

// bucketizeUDF buckets by the user function's label, per row (a UDF is
// opaque, so there is no shared fast path). The sort key comes from the
// first row that lands in each bucket.
func bucketizeUDF(x *dataset.Column, udf *UDF) *Bucketing {
	n := x.Len()
	rb := make([]int32, n)
	bk := &Bucketing{RowBucket: rb}
	nums := x.NumsSlice()
	labelBucket := make(map[string]int32)
	for i := 0; i < n; i++ {
		if x.IsNull(i) {
			rb[i] = -1
			continue
		}
		label, order := udf.Fn(nums[i])
		b, seen := labelBucket[label]
		if !seen {
			b = int32(len(bk.Labels))
			labelBucket[label] = b
			bk.Labels = append(bk.Labels, label)
			bk.Order = append(bk.Order, order)
			bk.Counts = append(bk.Counts, 0)
		}
		rb[i] = b
		bk.Counts[b]++
		bk.Input++
	}
	sortBuckets(bk)
	return bk
}

// applyUDFNeedY is the per-row path for BIN BY UDF with SUM/AVG,
// preserving the historical rule that a bucket's sort key comes from
// its first row with non-null Y.
func applyUDFNeedY(x, y *dataset.Column, spec Spec) (*Result, error) {
	n := x.Len()
	nums := x.NumsSlice()
	labelBucket := make(map[string]int32)
	var labels []string
	var order, sums []float64
	var cnts []int
	var rows [][]int
	inputRows := 0
	for i := 0; i < n; i++ {
		if x.IsNull(i) || y.IsNull(i) {
			continue
		}
		label, o := spec.UDF.Fn(nums[i])
		b, seen := labelBucket[label]
		if !seen {
			b = int32(len(labels))
			labelBucket[label] = b
			labels = append(labels, label)
			order = append(order, o)
			sums = append(sums, 0)
			cnts = append(cnts, 0)
			rows = append(rows, nil)
		}
		inputRows++
		sums[b] += y.NumAt(i)
		cnts[b]++
		rows[b] = append(rows[b], i)
	}
	nb := len(labels)
	perm := sortedBucketPerm(order, labels)
	res := &Result{
		XLabels:    make([]string, 0, nb),
		XOrder:     make([]float64, 0, nb),
		Y:          make([]float64, 0, nb),
		SourceRows: make([][]int, 0, nb),
		InputRows:  inputRows,
	}
	for _, b := range perm {
		res.XLabels = append(res.XLabels, labels[b])
		res.XOrder = append(res.XOrder, order[b])
		res.SourceRows = append(res.SourceRows, rows[b])
		if spec.Agg == AggSum {
			res.Y = append(res.Y, sums[b])
		} else {
			res.Y = append(res.Y, sums[b]/float64(cnts[b]))
		}
	}
	return res, nil
}

// sortedBucketPerm returns bucket indices in natural order: ascending
// numeric sort key (NaNs last), ties and NaNs by label.
func sortedBucketPerm(order []float64, labels []string) []int32 {
	perm := make([]int32, len(order))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		oa, ob := order[ia], order[ib]
		switch {
		case !math.IsNaN(oa) && !math.IsNaN(ob) && oa != ob:
			return oa < ob
		case math.IsNaN(oa) != math.IsNaN(ob):
			return !math.IsNaN(oa)
		default:
			return labels[ia] < labels[ib]
		}
	})
	return perm
}

// sortBuckets orders a bucketing's buckets by (sort key, label) and
// remaps the row assignment accordingly.
func sortBuckets(bk *Bucketing) {
	nb := bk.Len()
	if nb == 0 {
		return
	}
	perm := sortedBucketPerm(bk.Order, bk.Labels)
	sorted := true
	for i, b := range perm {
		if int32(i) != b {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	inv := make([]int32, nb)
	labels := make([]string, nb)
	order := make([]float64, nb)
	counts := make([]int, nb)
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = int32(newIdx)
		labels[newIdx] = bk.Labels[oldIdx]
		order[newIdx] = bk.Order[oldIdx]
		counts[newIdx] = bk.Counts[oldIdx]
	}
	bk.Labels, bk.Order, bk.Counts = labels, order, counts
	for i, b := range bk.RowBucket {
		if b >= 0 {
			bk.RowBucket[i] = inv[b]
		}
	}
}

func validUnit(u BinUnit) bool { return u >= ByMinute && u <= ByMonthOfYear }

// unitRowKey maps a Unix-second timestamp to its calendar bucket key —
// pure integer arithmetic, no time.Time construction, no formatting.
func unitRowKey(sec int64, u BinUnit) int64 {
	switch u {
	case ByMinute:
		return floorDiv(sec, 60)
	case ByHour:
		return floorDiv(sec, 3600)
	case ByDay:
		return floorDiv(sec, 86400)
	case ByWeek:
		d := floorDiv(sec, 86400)
		return d - weekdayMon(d)
	case ByMonth:
		y, m, _ := civilFromDays(floorDiv(sec, 86400))
		return y*12 + int64(m) - 1
	case ByQuarter:
		y, m, _ := civilFromDays(floorDiv(sec, 86400))
		return y*4 + int64(m-1)/3
	case ByYear:
		y, _, _ := civilFromDays(floorDiv(sec, 86400))
		return y
	case ByHourOfDay:
		return floorMod(sec, 86400) / 3600
	case ByDayOfWeek:
		return weekdayMon(floorDiv(sec, 86400))
	default: // ByMonthOfYear
		_, m, _ := civilFromDays(floorDiv(sec, 86400))
		return int64(m)
	}
}

// unitBucket renders a bucket key as its display label and sort key,
// matching the historical per-row formatting byte for byte (labels are
// formatted from the bucket's UTC start time).
func unitBucket(k int64, u BinUnit) (string, float64) {
	switch u {
	case ByMinute:
		start := k * 60
		return time.Unix(start, 0).UTC().Format("2006-01-02 15:04"), float64(start)
	case ByHour:
		start := k * 3600
		return time.Unix(start, 0).UTC().Format("2006-01-02 15:00"), float64(start)
	case ByDay:
		start := k * 86400
		return time.Unix(start, 0).UTC().Format("2006-01-02"), float64(start)
	case ByWeek:
		start := k * 86400
		return time.Unix(start, 0).UTC().Format("wk 2006-01-02"), float64(start)
	case ByMonth:
		y, m := floorDiv(k, 12), int(floorMod(k, 12))+1
		start := daysFromCivil(y, m, 1) * 86400
		return time.Unix(start, 0).UTC().Format("2006-01"), float64(start)
	case ByQuarter:
		y, q := floorDiv(k, 4), int(floorMod(k, 4))
		start := daysFromCivil(y, q*3+1, 1) * 86400
		return fmt.Sprintf("%dQ%d", y, q+1), float64(start)
	case ByYear:
		start := daysFromCivil(k, 1, 1) * 86400
		return time.Unix(start, 0).UTC().Format("2006"), float64(start)
	case ByHourOfDay:
		return fmt.Sprintf("%02d:00", k), float64(k)
	case ByDayOfWeek:
		return time.Weekday((k + 1) % 7).String()[:3], float64(k)
	default: // ByMonthOfYear
		return time.Month(k).String()[:3], float64(k)
	}
}

// weekdayMon returns the Monday-first weekday index (Mon=0 … Sun=6) of
// an epoch day number (1970-01-01 was a Thursday).
func weekdayMon(d int64) int64 { return floorMod(d+3, 7) }

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

// civilFromDays converts an epoch day number to a proleptic-Gregorian
// (y, m, d) civil date (Howard Hinnant's civil_from_days — the same
// calendar Go's time package uses).
func civilFromDays(z int64) (y int64, m, d int) {
	z += 719468
	era := floorDiv(z, 146097)
	doe := z - era*146097 // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y = yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		y++
	}
	return y, m, d
}

// daysFromCivil is the inverse of civilFromDays.
func daysFromCivil(y int64, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := floorDiv(y, 400)
	yoe := y - era*400
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// HourOfDay is a convenience key used by the paper's Figure 1(c): bin by
// the hour-of-day (00..23) rather than by absolute hour. It is exposed as
// a UDF-style unit because the paper's Q1 bins "scheduled BY HOUR" and the
// resulting chart has 24 buckets.
func HourOfDay(ts time.Time) (string, float64) {
	h := ts.Hour()
	return fmt.Sprintf("%02d:00", h), float64(h)
}

// DefaultBinCount is the bucket count for "default buckets" in the
// paper's search-space enumeration (BIN X INTO N with unspecified N).
const DefaultBinCount = 10

// SortAxis identifies which axis ORDER BY sorts.
type SortAxis int

const (
	// SortNone leaves bucket order as produced by Apply.
	SortNone SortAxis = iota
	// SortX orders buckets by X′ (numeric key when present, else label).
	SortX
	// SortY orders buckets by ascending Y′.
	SortY
)

// String returns the axis keyword.
func (a SortAxis) String() string {
	switch a {
	case SortNone:
		return "NONE"
	case SortX:
		return "X"
	case SortY:
		return "Y"
	default:
		return fmt.Sprintf("SortAxis(%d)", int(a))
	}
}

// resultLess is OrderBy's comparator over a Result's rows: SortY by
// value, SortX by numeric order with NaN last and label ties.
// ySortKey is OrderBy's pre-extracted SortY key: the row's Y value and
// its original position. Sorting contiguous keys instead of driving an
// interface sorter through the Result's parallel slices keeps every
// comparison on adjacent memory.
type ySortKey struct {
	y   float64
	idx int
}

// xSortKey is the SortX analogue: the numeric X order plus the original
// position; labels are reached through the Result on the (rare) tie.
type xSortKey struct {
	o   float64
	idx int
}

// cmpY orders SortY keys by Y ascending. A NaN compares "equal" to
// everything (both a.y < b.y and b.y < a.y are false), exactly as the
// former sort.Stable comparator behaved; slices.SortStableFunc and
// sort.Stable are generated from the same insertion+symmerge template,
// so identical comparison outcomes yield the identical permutation.
func cmpY(a, b ySortKey) int {
	switch {
	case a.y < b.y:
		return -1
	case b.y < a.y:
		return 1
	default:
		return 0
	}
}

// cmpYIdx is cmpY completed to a strict total order by the original
// index. For NaN-free input a stable sort under cmpY orders ties by
// original position — which is exactly the unique order under cmpYIdx —
// so the unstable (and faster) slices.SortFunc reproduces the stable
// permutation bit for bit. NaN keys break the ordering's transitivity,
// so callers must fall back to the stable path when any are present.
func cmpYIdx(a, b ySortKey) int {
	switch {
	case a.y < b.y:
		return -1
	case b.y < a.y:
		return 1
	case a.idx < b.idx:
		return -1
	case b.idx < a.idx:
		return 1
	default:
		return 0
	}
}

// sortKeyBufs pools OrderBy's key and permutation scratch: the batch
// executor sorts hundreds of results per table and the keys are never
// retained past the call.
type sortKeyBufs struct {
	yk   []ySortKey
	xk   []xSortKey
	perm []int
}

var sortKeyScratch = sync.Pool{New: func() any { return new(sortKeyBufs) }}

// OrderBy sorts the result along the given axis. Apply already yields
// X-order, so SortX is idempotent; SortY reorders by value. The sorted
// rows land in freshly allocated slices — the previous backing arrays
// are never mutated, so a result whose slices are shared with a
// Bucketing or a sibling result can be sorted without cloning first.
func OrderBy(r *Result, axis SortAxis) {
	if axis != SortX && axis != SortY {
		return
	}
	n := r.Len()
	buf := sortKeyScratch.Get().(*sortKeyBufs)
	perm := slices.Grow(buf.perm[:0], n)[:n]
	if axis == SortY {
		keys := slices.Grow(buf.yk[:0], n)[:n]
		hasNaN := false
		for i := range keys {
			y := r.Y[i]
			if math.IsNaN(y) {
				hasNaN = true
			}
			keys[i] = ySortKey{y: y, idx: i}
		}
		if hasNaN {
			slices.SortStableFunc(keys, cmpY)
		} else {
			slices.SortFunc(keys, cmpYIdx)
		}
		for k := range keys {
			perm[k] = keys[k].idx
		}
		buf.yk = keys
	} else {
		keys := slices.Grow(buf.xk[:0], n)[:n]
		for i := range keys {
			keys[i] = xSortKey{o: r.XOrder[i], idx: i}
		}
		// The SortX relation (numeric order, NaN keys last, labels
		// breaking ties) is a strict weak ordering even with NaNs, so
		// completing it with the original index gives a strict total
		// order whose unique result is the stable permutation — pdqsort
		// applies.
		slices.SortFunc(keys, func(a, b xSortKey) int {
			switch {
			case !math.IsNaN(a.o) && !math.IsNaN(b.o) && a.o != b.o:
				if a.o < b.o {
					return -1
				}
				return 1
			case math.IsNaN(a.o) != math.IsNaN(b.o):
				if !math.IsNaN(a.o) {
					return -1
				}
				return 1
			default:
				if c := strings.Compare(r.XLabels[a.idx], r.XLabels[b.idx]); c != 0 {
					return c
				}
				switch {
				case a.idx < b.idx:
					return -1
				case b.idx < a.idx:
					return 1
				default:
					return 0
				}
			}
		})
		for k := range keys {
			perm[k] = keys[k].idx
		}
		buf.xk = keys
	}
	buf.perm = perm
	identity := true
	for k, p := range perm {
		if p != k {
			identity = false
			break
		}
	}
	if !identity {
		labels := make([]string, n)
		order := make([]float64, n)
		y := make([]float64, n)
		for k, p := range perm {
			labels[k], order[k], y[k] = r.XLabels[p], r.XOrder[p], r.Y[p]
		}
		r.XLabels, r.XOrder, r.Y = labels, order, y
		if len(r.SourceRows) == n {
			src := make([][]int, n)
			for k, p := range perm {
				src[k] = r.SourceRows[p]
			}
			r.SourceRows = src
		}
	}
	sortKeyScratch.Put(buf)
}
