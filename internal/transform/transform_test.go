package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/deepeye/deepeye/internal/dataset"
)

func mkTimes(n int, step time.Duration) []time.Time {
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]time.Time, n)
	for i := range out {
		out[i] = base.Add(time.Duration(i) * step)
	}
	return out
}

func TestGroupSum(t *testing.T) {
	x := dataset.CatColumn("carrier", []string{"UA", "AA", "UA", "OO", "AA", "UA"})
	y := dataset.NumColumn("pax", []float64{10, 20, 30, 40, 50, 60})
	res, err := Apply(x, y, Spec{Kind: KindGroup, Agg: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"AA": 70, "OO": 40, "UA": 100}
	if res.Len() != 3 {
		t.Fatalf("len = %d", res.Len())
	}
	for i, l := range res.XLabels {
		if res.Y[i] != want[l] {
			t.Errorf("%s = %v, want %v", l, res.Y[i], want[l])
		}
	}
	if res.InputRows != 6 {
		t.Errorf("input rows = %d", res.InputRows)
	}
}

func TestGroupAvgAndCnt(t *testing.T) {
	x := dataset.CatColumn("c", []string{"a", "a", "b"})
	y := dataset.NumColumn("v", []float64{2, 4, 10})
	avg, err := Apply(x, y, Spec{Kind: KindGroup, Agg: AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Y[0] != 3 || avg.Y[1] != 10 {
		t.Errorf("avg = %v", avg.Y)
	}
	cnt, err := Apply(x, nil, Spec{Kind: KindGroup, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Y[0] != 2 || cnt.Y[1] != 1 {
		t.Errorf("cnt = %v", cnt.Y)
	}
}

func TestGroupSkipsNullY(t *testing.T) {
	x := dataset.CatColumn("c", []string{"a", "a"})
	y := dataset.NumColumn("v", []float64{2, math.NaN()})
	res, err := Apply(x, y, Spec{Kind: KindGroup, Agg: AggSum})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y[0] != 2 || res.InputRows != 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestBinByHour(t *testing.T) {
	times := mkTimes(120, time.Minute) // 2 hours of minutes
	x := dataset.TimeColumn("sched", times)
	y := dataset.NumColumn("delay", make([]float64, 120))
	res, err := Apply(x, y, Spec{Kind: KindBinUnit, Unit: ByHour, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Y[0] != 60 || res.Y[1] != 60 {
		t.Fatalf("res = %v %v", res.XLabels, res.Y)
	}
}

func TestBinUnitsProduceSortedBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	times := make([]time.Time, 500)
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := range times {
		times[i] = base.Add(time.Duration(rng.Intn(365*24)) * time.Hour)
	}
	x := dataset.TimeColumn("t", times)
	for _, u := range AllBinUnits {
		res, err := Apply(x, nil, Spec{Kind: KindBinUnit, Unit: u, Agg: AggCnt})
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		for i := 1; i < res.Len(); i++ {
			if res.XOrder[i] < res.XOrder[i-1] {
				t.Fatalf("%v: buckets out of order at %d", u, i)
			}
		}
	}
}

func TestBinQuarterLabels(t *testing.T) {
	times := []time.Time{
		time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC),
	}
	x := dataset.TimeColumn("t", times)
	res, err := Apply(x, nil, Spec{Kind: KindBinUnit, Unit: ByQuarter, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if res.XLabels[0] != "2015Q1" || res.XLabels[1] != "2015Q3" {
		t.Errorf("labels = %v", res.XLabels)
	}
}

func TestBinIntoN(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i) // [0, 99]
	}
	x := dataset.NumColumn("v", vals)
	res, err := Apply(x, nil, Spec{Kind: KindBinCount, N: 10, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Fatalf("bins = %d, want 10", res.Len())
	}
	for i, c := range res.Y {
		if c != 10 {
			t.Errorf("bin %d count = %v, want 10", i, c)
		}
	}
}

func TestBinIntoNDegenerateRange(t *testing.T) {
	x := dataset.NumColumn("v", []float64{5, 5, 5})
	res, err := Apply(x, nil, Spec{Kind: KindBinCount, N: 10, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Y[0] != 3 {
		t.Errorf("res = %v %v", res.XLabels, res.Y)
	}
}

func TestBinUDF(t *testing.T) {
	udf := &UDF{Name: "sign", Fn: func(v float64) (string, float64) {
		if v < 0 {
			return "delayed early", 0
		}
		return "delayed late", 1
	}}
	x := dataset.NumColumn("delay", []float64{-4, 0, 11, -2, 7})
	res, err := Apply(x, nil, Spec{Kind: KindBinUDF, UDF: udf, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Y[0] != 2 || res.Y[1] != 3 {
		t.Errorf("res = %v %v", res.XLabels, res.Y)
	}
}

func TestRawPassThrough(t *testing.T) {
	x := dataset.NumColumn("a", []float64{3, 1, 2})
	y := dataset.NumColumn("b", []float64{30, 10, 20})
	res, err := Apply(x, y, Spec{Kind: KindNone, Agg: AggNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 || res.Y[0] != 30 {
		t.Errorf("res = %+v", res)
	}
}

func TestApplyErrors(t *testing.T) {
	num := dataset.NumColumn("n", []float64{1})
	cat := dataset.CatColumn("c", []string{"a"})
	tem := dataset.TimeColumn("t", mkTimes(1, time.Hour))
	cases := []struct {
		name string
		x, y *dataset.Column
		spec Spec
	}{
		{"nil x", nil, num, Spec{Kind: KindGroup, Agg: AggCnt}},
		{"sum needs y", cat, nil, Spec{Kind: KindGroup, Agg: AggSum}},
		{"sum needs numeric y", cat, cat, Spec{Kind: KindGroup, Agg: AggSum}},
		{"bin unit needs temporal", num, num, Spec{Kind: KindBinUnit, Unit: ByHour, Agg: AggCnt}},
		{"bin count needs numeric", tem, num, Spec{Kind: KindBinCount, N: 5, Agg: AggCnt}},
		{"udf requires fn", num, num, Spec{Kind: KindBinUDF, Agg: AggCnt}},
		{"raw cannot agg", num, num, Spec{Kind: KindNone, Agg: AggSum}},
		{"raw needs numeric y", num, cat, Spec{Kind: KindNone, Agg: AggNone}},
	}
	for _, c := range cases {
		if _, err := Apply(c.x, c.y, c.spec); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestOrderByX(t *testing.T) {
	r := &Result{
		XLabels:    []string{"b", "a", "c"},
		XOrder:     []float64{math.NaN(), math.NaN(), math.NaN()},
		Y:          []float64{2, 1, 3},
		SourceRows: [][]int{{1}, {0}, {2}},
	}
	OrderBy(r, SortX)
	if r.XLabels[0] != "a" || r.Y[0] != 1 {
		t.Errorf("sorted = %v %v", r.XLabels, r.Y)
	}
}

func TestOrderByY(t *testing.T) {
	r := &Result{
		XLabels:    []string{"a", "b", "c"},
		XOrder:     []float64{1, 2, 3},
		Y:          []float64{5, 1, 3},
		SourceRows: [][]int{{0}, {1}, {2}},
	}
	OrderBy(r, SortY)
	if r.Y[0] != 1 || r.Y[2] != 5 || r.XLabels[0] != "b" {
		t.Errorf("sorted = %v %v", r.XLabels, r.Y)
	}
	OrderBy(r, SortNone) // no-op
	if r.Y[0] != 1 {
		t.Error("SortNone should not reorder")
	}
}

func TestHourOfDay(t *testing.T) {
	label, order := HourOfDay(time.Date(2015, 3, 4, 17, 30, 0, 0, time.UTC))
	if label != "17:00" || order != 17 {
		t.Errorf("hour of day = %q %v", label, order)
	}
}

func TestSpecStrings(t *testing.T) {
	specs := []Spec{
		{Kind: KindNone, Agg: AggNone},
		{Kind: KindGroup, Agg: AggSum},
		{Kind: KindBinUnit, Unit: ByMonth, Agg: AggAvg},
		{Kind: KindBinCount, N: 10, Agg: AggCnt},
		{Kind: KindBinUDF, UDF: &UDF{Name: "sign"}, Agg: AggCnt},
	}
	for _, s := range specs {
		if s.String() == "?" {
			t.Errorf("spec %+v has no string", s)
		}
	}
}

// Property: SUM over group buckets equals the total sum of the column.
func TestGroupSumConservationQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%100) + 1
		cats := make([]string, m)
		vals := make([]float64, m)
		var total float64
		for i := range cats {
			cats[i] = string(rune('a' + rng.Intn(5)))
			vals[i] = float64(rng.Intn(1000))
			total += vals[i]
		}
		x := dataset.CatColumn("c", cats)
		y := dataset.NumColumn("v", vals)
		res, err := Apply(x, y, Spec{Kind: KindGroup, Agg: AggSum})
		if err != nil {
			return false
		}
		var got float64
		for _, v := range res.Y {
			got += v
		}
		return math.Abs(got-total) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CNT over bins equals the number of non-null tuples, for any N.
func TestBinCountConservationQuick(t *testing.T) {
	f := func(seed int64, nBins uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 200)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 50
		}
		x := dataset.NumColumn("v", vals)
		n := int(nBins%30) + 1
		res, err := Apply(x, nil, Spec{Kind: KindBinCount, N: n, Agg: AggCnt})
		if err != nil {
			return false
		}
		var got float64
		for _, v := range res.Y {
			got += v
		}
		return got == 200 && res.Len() <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every source row index appears in exactly one bucket.
func TestSourceRowsPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cats := make([]string, 80)
		for i := range cats {
			cats[i] = string(rune('a' + rng.Intn(7)))
		}
		x := dataset.CatColumn("c", cats)
		res, err := Apply(x, nil, Spec{Kind: KindGroup, Agg: AggCnt})
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, rows := range res.SourceRows {
			for _, r := range rows {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == 80
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: OrderBy(SortY) yields a non-decreasing Y and preserves the
// multiset of (label, y) pairs.
func TestOrderByYSortsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		r := &Result{}
		for i := 0; i < n; i++ {
			r.XLabels = append(r.XLabels, string(rune('a'+i%26)))
			r.XOrder = append(r.XOrder, float64(i))
			r.Y = append(r.Y, float64(rng.Intn(100)))
			r.SourceRows = append(r.SourceRows, []int{i})
		}
		var sum float64
		for _, v := range r.Y {
			sum += v
		}
		OrderBy(r, SortY)
		var sum2 float64
		for i, v := range r.Y {
			sum2 += v
			if i > 0 && v < r.Y[i-1] {
				return false
			}
		}
		return sum == sum2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodicUnits(t *testing.T) {
	// Two years of hourly timestamps: periodic units must fold onto
	// bounded bucket counts regardless of span.
	base := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	times := make([]time.Time, 2000)
	for i := range times {
		times[i] = base.Add(time.Duration(i*7) * time.Hour)
	}
	x := dataset.TimeColumn("t", times)

	hod, err := Apply(x, nil, Spec{Kind: KindBinUnit, Unit: ByHourOfDay, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if hod.Len() > 24 {
		t.Errorf("hour-of-day buckets = %d, want <= 24", hod.Len())
	}
	if hod.XLabels[0] != "00:00" {
		t.Errorf("first hour label = %q", hod.XLabels[0])
	}

	dow, err := Apply(x, nil, Spec{Kind: KindBinUnit, Unit: ByDayOfWeek, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if dow.Len() != 7 {
		t.Errorf("day-of-week buckets = %d, want 7", dow.Len())
	}
	// Monday-first ordering.
	if dow.XLabels[0] != "Mon" || dow.XLabels[6] != "Sun" {
		t.Errorf("dow labels = %v", dow.XLabels)
	}

	moy, err := Apply(x, nil, Spec{Kind: KindBinUnit, Unit: ByMonthOfYear, Agg: AggCnt})
	if err != nil {
		t.Fatal(err)
	}
	if moy.Len() != 12 {
		t.Errorf("month-of-year buckets = %d, want 12", moy.Len())
	}
	if moy.XLabels[0] != "Jan" {
		t.Errorf("first month label = %q", moy.XLabels[0])
	}
}

func TestPeriodicCountsConserved(t *testing.T) {
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	times := make([]time.Time, 500)
	for i := range times {
		times[i] = base.Add(time.Duration(i*13) * time.Hour)
	}
	x := dataset.TimeColumn("t", times)
	for _, u := range PeriodicBinUnits {
		res, err := Apply(x, nil, Spec{Kind: KindBinUnit, Unit: u, Agg: AggCnt})
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		var total float64
		for _, v := range res.Y {
			total += v
		}
		if total != 500 {
			t.Errorf("%v: counts sum to %v, want 500", u, total)
		}
	}
}
