package transform

import (
	"fmt"
	"math"
	"sort"

	"github.com/deepeye/deepeye/internal/dataset"
)

// MultiResult is the transformed data of a multi-series visualization
// (paper §II-B "Extensions for One Column and Multiple Columns"): one
// shared X′ axis and one Y′ series per compared column or per series
// group.
type MultiResult struct {
	XLabels     []string
	XOrder      []float64
	SeriesNames []string
	// Series[s][i] is series s's aggregated value in bucket i; NaN marks
	// buckets a series has no data for.
	Series    [][]float64
	InputRows int
}

// Len returns the number of X′ buckets.
func (r *MultiResult) Len() int { return len(r.XLabels) }

// NumSeries returns the number of plotted series.
func (r *MultiResult) NumSeries() int { return len(r.Series) }

// ApplyMultiY buckets X once and aggregates every Y column over the same
// buckets — the paper's case (i): one X with multiple Y₁…Y_z compared on
// a shared axis. Aggs[i] applies to ys[i]; AggCnt is identical across
// series and therefore rejected for multi-Y (it would plot the same
// series z times).
func ApplyMultiY(x *dataset.Column, ys []*dataset.Column, spec Spec, aggs []Agg) (*MultiResult, error) {
	if len(ys) < 2 {
		return nil, fmt.Errorf("transform: multi-Y needs at least 2 series, got %d", len(ys))
	}
	if len(aggs) != len(ys) {
		return nil, fmt.Errorf("transform: %d aggregates for %d series", len(aggs), len(ys))
	}
	base := spec
	base.Agg = AggCnt
	skeleton, err := Apply(x, nil, base)
	if err != nil {
		return nil, err
	}
	if skeleton.Len() == 0 {
		return nil, fmt.Errorf("transform: multi-Y produced no buckets")
	}
	out := &MultiResult{
		XLabels:   skeleton.XLabels,
		XOrder:    skeleton.XOrder,
		InputRows: skeleton.InputRows,
	}
	for si, y := range ys {
		if y == nil || y.Type != dataset.Numerical {
			return nil, fmt.Errorf("transform: multi-Y series %d must be numerical", si)
		}
		agg := aggs[si]
		if agg == AggNone || agg == AggCnt {
			return nil, fmt.Errorf("transform: multi-Y series %d needs SUM or AVG (CNT repeats the same series)", si)
		}
		series := make([]float64, skeleton.Len())
		for bi, rows := range skeleton.SourceRows {
			sum, cnt := 0.0, 0
			for _, r := range rows {
				if !y.IsNull(r) {
					sum += y.NumAt(r)
					cnt++
				}
			}
			switch {
			case cnt == 0:
				series[bi] = math.NaN()
			case agg == AggAvg:
				series[bi] = sum / float64(cnt)
			default:
				series[bi] = sum
			}
		}
		out.SeriesNames = append(out.SeriesNames, fmt.Sprintf("%s(%s)", agg, y.Name))
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// ApplyXYZ implements the paper's case (ii): group the data by X (one
// series per X value), bucket Y inside each group with spec, and
// aggregate Z per bucket — e.g. Fig. 1(b)'s stacked bars: series =
// destination, x-axis = scheduled month, value = SUM(passengers).
// MaxSeries caps the series count (the largest groups win); 0 means 12.
func ApplyXYZ(x, y, z *dataset.Column, spec Spec, maxSeries int) (*MultiResult, error) {
	if x == nil || y == nil || z == nil {
		return nil, fmt.Errorf("transform: xyz requires three columns")
	}
	if x.Type == dataset.Numerical {
		return nil, fmt.Errorf("transform: the series column must be categorical or temporal")
	}
	if spec.Agg == AggNone {
		return nil, fmt.Errorf("transform: xyz requires an aggregate")
	}
	if spec.Agg != AggCnt && z.Type != dataset.Numerical {
		return nil, fmt.Errorf("transform: %s requires numerical z", spec.Agg)
	}
	if maxSeries <= 0 {
		maxSeries = 12
	}
	// The shared x-axis skeleton over all rows.
	base := spec
	base.Agg = AggCnt
	skeleton, err := Apply(y, nil, base)
	if err != nil {
		return nil, err
	}
	if skeleton.Len() == 0 {
		return nil, fmt.Errorf("transform: xyz produced no buckets")
	}
	bucketOf := make(map[int]int) // row -> bucket index
	for bi, rows := range skeleton.SourceRows {
		for _, r := range rows {
			bucketOf[r] = bi
		}
	}
	// Group rows by the series column.
	type group struct {
		label string
		rows  []int
	}
	groups := map[string]*group{}
	for i := 0; i < x.Len(); i++ {
		if x.IsNull(i) {
			continue
		}
		if _, inBucket := bucketOf[i]; !inBucket {
			continue
		}
		raw := x.RawAt(i)
		g := groups[raw]
		if g == nil {
			g = &group{label: raw}
			groups[raw] = g
		}
		g.rows = append(g.rows, i)
	}
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if len(ordered[a].rows) != len(ordered[b].rows) {
			return len(ordered[a].rows) > len(ordered[b].rows)
		}
		return ordered[a].label < ordered[b].label
	})
	if len(ordered) > maxSeries {
		ordered = ordered[:maxSeries]
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].label < ordered[b].label })

	out := &MultiResult{
		XLabels:   skeleton.XLabels,
		XOrder:    skeleton.XOrder,
		InputRows: skeleton.InputRows,
	}
	for _, g := range ordered {
		sums := make([]float64, skeleton.Len())
		cnts := make([]int, skeleton.Len())
		for _, r := range g.rows {
			bi := bucketOf[r]
			if spec.Agg != AggCnt && z.IsNull(r) {
				continue
			}
			cnts[bi]++
			if spec.Agg != AggCnt {
				sums[bi] += z.NumAt(r)
			}
		}
		series := make([]float64, skeleton.Len())
		for bi := range series {
			switch {
			case cnts[bi] == 0:
				series[bi] = math.NaN()
			case spec.Agg == AggCnt:
				series[bi] = float64(cnts[bi])
			case spec.Agg == AggAvg:
				series[bi] = sums[bi] / float64(cnts[bi])
			default:
				series[bi] = sums[bi]
			}
		}
		out.SeriesNames = append(out.SeriesNames, g.label)
		out.Series = append(out.Series, series)
	}
	return out, nil
}
