package transform

import (
	"math"
	"testing"
	"time"

	"github.com/deepeye/deepeye/internal/dataset"
)

func TestApplyMultiYBasic(t *testing.T) {
	x := dataset.CatColumn("c", []string{"a", "a", "b", "b"})
	y1 := dataset.NumColumn("u", []float64{1, 3, 10, 20})
	y2 := dataset.NumColumn("v", []float64{2, 4, 6, 8})
	res, err := ApplyMultiY(x, []*dataset.Column{y1, y2},
		Spec{Kind: KindGroup}, []Agg{AggAvg, AggSum})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSeries() != 2 || res.Len() != 2 {
		t.Fatalf("dims = %dx%d", res.NumSeries(), res.Len())
	}
	// a: avg(u)=2, sum(v)=6; b: avg(u)=15, sum(v)=14.
	if res.Series[0][0] != 2 || res.Series[0][1] != 15 {
		t.Errorf("series u = %v", res.Series[0])
	}
	if res.Series[1][0] != 6 || res.Series[1][1] != 14 {
		t.Errorf("series v = %v", res.Series[1])
	}
}

func TestApplyMultiYNaNForEmptyBuckets(t *testing.T) {
	x := dataset.CatColumn("c", []string{"a", "b"})
	y1 := dataset.NumColumn("u", []float64{1, math.NaN()})
	y2 := dataset.NumColumn("v", []float64{2, 3})
	res, err := ApplyMultiY(x, []*dataset.Column{y1, y2},
		Spec{Kind: KindGroup}, []Agg{AggAvg, AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Series[0][1]) {
		t.Errorf("null-only bucket should be NaN, got %v", res.Series[0][1])
	}
	if res.Series[1][1] != 3 {
		t.Errorf("series v = %v", res.Series[1])
	}
}

func TestApplyMultiYErrors(t *testing.T) {
	x := dataset.CatColumn("c", []string{"a"})
	num := dataset.NumColumn("u", []float64{1})
	cat := dataset.CatColumn("w", []string{"z"})
	if _, err := ApplyMultiY(x, []*dataset.Column{num}, Spec{Kind: KindGroup}, []Agg{AggAvg}); err == nil {
		t.Error("single series should fail")
	}
	if _, err := ApplyMultiY(x, []*dataset.Column{num, cat}, Spec{Kind: KindGroup}, []Agg{AggAvg, AggAvg}); err == nil {
		t.Error("categorical series should fail")
	}
	if _, err := ApplyMultiY(x, []*dataset.Column{num, num}, Spec{Kind: KindGroup}, []Agg{AggCnt, AggCnt}); err == nil {
		t.Error("CNT series should fail")
	}
	if _, err := ApplyMultiY(x, []*dataset.Column{num, num}, Spec{Kind: KindGroup}, []Agg{AggAvg}); err == nil {
		t.Error("agg count mismatch should fail")
	}
}

func TestApplyXYZBasic(t *testing.T) {
	// Two series (p, q) over two months.
	base := time.Date(2015, 1, 15, 0, 0, 0, 0, time.UTC)
	times := []time.Time{base, base, base.AddDate(0, 1, 0), base.AddDate(0, 1, 0)}
	series := dataset.CatColumn("s", []string{"p", "q", "p", "q"})
	axis := dataset.TimeColumn("when", times)
	z := dataset.NumColumn("z", []float64{1, 10, 2, 20})
	res, err := ApplyXYZ(series, axis, z, Spec{Kind: KindBinUnit, Unit: ByMonth, Agg: AggSum}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSeries() != 2 || res.Len() != 2 {
		t.Fatalf("dims = %dx%d", res.NumSeries(), res.Len())
	}
	// Alphabetical series order: p then q.
	if res.SeriesNames[0] != "p" || res.Series[0][0] != 1 || res.Series[0][1] != 2 {
		t.Errorf("series p = %v", res.Series[0])
	}
	if res.Series[1][0] != 10 || res.Series[1][1] != 20 {
		t.Errorf("series q = %v", res.Series[1])
	}
}

func TestApplyXYZMaxSeries(t *testing.T) {
	n := 100
	labels := make([]string, n)
	vals := make([]float64, n)
	for i := range labels {
		labels[i] = string(rune('a' + i%20)) // 20 series
		vals[i] = float64(i)
	}
	series := dataset.CatColumn("s", labels)
	axis := dataset.NumColumn("x", vals)
	res, err := ApplyXYZ(series, axis, axis, Spec{Kind: KindBinCount, N: 5, Agg: AggCnt}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSeries() != 6 {
		t.Errorf("series = %d, want capped 6", res.NumSeries())
	}
}

func TestApplyXYZErrors(t *testing.T) {
	num := dataset.NumColumn("n", []float64{1})
	cat := dataset.CatColumn("c", []string{"a"})
	if _, err := ApplyXYZ(num, num, num, Spec{Kind: KindBinCount, N: 2, Agg: AggSum}, 0); err == nil {
		t.Error("numeric series column should fail")
	}
	if _, err := ApplyXYZ(cat, num, cat, Spec{Kind: KindBinCount, N: 2, Agg: AggSum}, 0); err == nil {
		t.Error("SUM of categorical z should fail")
	}
	if _, err := ApplyXYZ(cat, num, num, Spec{Kind: KindBinCount, N: 2, Agg: AggNone}, 0); err == nil {
		t.Error("missing aggregate should fail")
	}
	if _, err := ApplyXYZ(nil, num, num, Spec{Kind: KindBinCount, N: 2, Agg: AggSum}, 0); err == nil {
		t.Error("nil column should fail")
	}
}
