package load

import (
	"strings"
	"testing"
	"time"
)

const fullScenario = `
# exercise every section and key
duration = 30s
warmup = 3s
concurrency = 16
rate = 250.5
burst = 32
seed = 99

[server]
registry_size = 1048576
cache_size = 2097152
dataset_ttl = 45s
data_dir = auto
wal_compact_bytes = 4096
max_inflight = 64
timeout = 5s
workers = 2

[dataset sales]
rows = 500
cols = 6
seed = 7
append_rows = 12

[dataset clicks]    # inherits the scenario seed

[op topk]
weight = 4
dataset = sales
k = 9

[op search]
weight = 2
dataset = clicks
q = region metric1
k = 3

[op query]
weight = 1.5
dataset = sales
q = VISUALIZE bar SELECT region, SUM(metric1) FROM sales GROUP BY region

[op append]
weight = 3
dataset = sales

[op register]
weight = 1
rows = 80
cols = 5

[op drop]
weight = 0.5
`

func TestParseScenarioFull(t *testing.T) {
	sc, err := ParseScenarioString(fullScenario)
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Duration != 30*time.Second || sc.Warmup != 3*time.Second {
		t.Errorf("duration/warmup = %v/%v", sc.Duration, sc.Warmup)
	}
	if sc.Concurrency != 16 || sc.Rate != 250.5 || sc.Burst != 32 || sc.Seed != 99 {
		t.Errorf("header = %+v", sc)
	}
	srv := sc.Server
	if srv.RegistrySize != 1<<20 || srv.CacheSize != 2<<20 || srv.DatasetTTL != 45*time.Second ||
		srv.DataDir != "auto" || srv.WALCompactBytes != 4096 || srv.MaxInFlight != 64 ||
		srv.Timeout != 5*time.Second || srv.Workers != 2 {
		t.Errorf("server = %+v", srv)
	}
	if len(sc.Datasets) != 2 {
		t.Fatalf("datasets = %d", len(sc.Datasets))
	}
	sales := sc.Dataset("sales")
	if sales.Rows != 500 || sales.Cols != 6 || sales.Seed != 7 || sales.AppendRows != 12 {
		t.Errorf("sales = %+v", sales)
	}
	clicks := sc.Dataset("clicks")
	if clicks.Rows != 200 || clicks.Cols != 4 || clicks.Seed != 99 || clicks.AppendRows != 5 {
		t.Errorf("clicks defaults = %+v", clicks)
	}
	if len(sc.Ops) != 6 {
		t.Fatalf("ops = %d", len(sc.Ops))
	}
	if got := sc.WeightSum(); got != 12.0 {
		t.Errorf("WeightSum = %g, want 12", got)
	}
	if sc.Ops[0].Kind != OpTopK || sc.Ops[0].K != 9 || sc.Ops[0].Dataset != "sales" {
		t.Errorf("op[0] = %+v", sc.Ops[0])
	}
	if sc.Ops[4].Kind != OpRegister || sc.Ops[4].Rows != 80 || sc.Ops[4].Cols != 5 {
		t.Errorf("register op = %+v", sc.Ops[4])
	}
}

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenarioString("[dataset d]\n[op topk]\nweight=1\ndataset=d\n")
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Duration != 10*time.Second || sc.Concurrency != 4 || sc.Rate != 50 || sc.Seed != 1 {
		t.Errorf("header defaults = %+v", sc)
	}
	if sc.Burst != sc.Concurrency {
		t.Errorf("burst default = %d, want concurrency %d", sc.Burst, sc.Concurrency)
	}
	if sc.Server.RegistrySize != 256<<20 || sc.Server.MaxInFlight != 256 {
		t.Errorf("server defaults = %+v", sc.Server)
	}
}

func TestParseScenarioCluster(t *testing.T) {
	sc, err := ParseScenarioString("[cluster]\nnodes = 3\n[dataset d]\n[op topk]\nweight=1\ndataset=d\n")
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Cluster.Nodes != 3 {
		t.Errorf("cluster nodes = %d, want 3", sc.Cluster.Nodes)
	}
	// No [cluster] section means single-node.
	sc, err = ParseScenarioString("[dataset d]\n[op topk]\nweight=1\ndataset=d\n")
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Cluster.Nodes != 0 {
		t.Errorf("cluster nodes default = %d, want 0", sc.Cluster.Nodes)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	// Every case names the substring the error must carry; cases with a
	// line prefix also pin the reported line number.
	valid := "[dataset d]\n[op topk]\nweight=1\ndataset=d\n"
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "no [op] sections"},
		{"no ops", "duration = 5s\n", "no [op] sections"},
		{"unterminated section", "[server\n", "line 1: unterminated"},
		{"malformed section", "[frobnicate]\n", "line 1: malformed section"},
		{"dataset without name", "[dataset]\n", "line 1: malformed section"},
		{"unknown op", "[op frob]\n", `line 1: unknown op "frob"`},
		{"no equals", "duration\n", "line 1: malformed line"},
		{"empty value", "duration =\n", "line 1: malformed line"},
		{"unknown header key", "frobs = 3\n", `line 1: unknown header key "frobs"`},
		{"bad duration", "duration = banana\n", "line 1: duration"},
		{"negative duration", "duration = -5s\n", "line 1: duration must be positive"},
		{"zero rate", "rate = 0\n", "line 1: rate must be positive"},
		{"zero concurrency", "concurrency = 0\n", "line 1: concurrency must be positive"},
		{"negative warmup", "warmup = -1s\n", "line 1: warmup must not be negative"},
		{"warmup exceeds duration", "duration = 5s\nwarmup = 5s\n" + valid, "warmup 5s must be shorter"},
		{"duplicate header key", "duration = 5s\nduration = 6s\n", `line 2: duplicate key "duration"`},
		{"duplicate server section", "[server]\n[server]\n", "line 2: duplicate [server]"},
		{"duplicate dataset", "[dataset d]\n[dataset d]\n", `line 2: duplicate dataset name "d"`},
		{"duplicate section key", "[dataset d]\nrows = 5\nrows = 6\n", `line 3: duplicate key "rows"`},
		{"unknown server key", "[server]\nfrobs = 1\n", `line 2: unknown [server] key`},
		{"negative registry", "[server]\nregistry_size = -1\n", "line 2: registry_size must be positive"},
		{"unknown dataset key", "[dataset d]\nfrobs = 1\n", `line 2: unknown [dataset] key`},
		{"dataset cols too few", "[dataset d]\ncols = 2\n", "line 2: cols must be at least 3"},
		{"dataset zero rows", "[dataset d]\nrows = 0\n", "line 2: rows must be positive"},
		{"unknown op key", "[op topk]\nfrobs = 1\n", `line 2: unknown [op] key`},
		{"op zero weight", "[op topk]\nweight = 0\n", "line 2: weight must be positive"},
		{"op zero k", "[op topk]\nk = 0\n", "line 2: k must be positive"},
		{"op missing weight", "[dataset d]\n[op topk]\ndataset=d\n", "declares no weight"},
		{"op missing dataset", "[op topk]\nweight = 1\n", "needs a dataset key"},
		{"op unknown dataset", "[op topk]\nweight = 1\ndataset = ghost\n", `undeclared dataset "ghost"`},
		{"dataset on register", "[op register]\nweight=1\ndataset = d\n", "does not take a dataset"},
		{"dataset on drop", "[op drop]\nweight=1\ndataset = d\n", "does not take a dataset"},
		{"rows on topk", "[dataset d]\n[op topk]\nweight=1\ndataset=d\nrows=5\n", "rows only applies to op register"},
		{"cols on append", "[dataset d]\n[op append]\nweight=1\ndataset=d\ncols=5\n", "cols only applies to op register"},
		{"unused dataset", "[dataset ghost]\n" + valid, `dataset "ghost" is declared but no op targets it`},
		{"duplicate cluster section", "[cluster]\nnodes = 3\n[cluster]\n" + valid, "line 3: duplicate [cluster]"},
		{"unknown cluster key", "[cluster]\nfrobs = 1\n" + valid, `line 2: unknown [cluster] key`},
		{"cluster one node", "[cluster]\nnodes = 1\n" + valid, "line 2: nodes must be between 2 and 16"},
		{"cluster too many nodes", "[cluster]\nnodes = 17\n" + valid, "line 2: nodes must be between 2 and 16"},
		{"cluster without nodes", "[cluster]\n" + valid, "line 1: [cluster] declares no nodes key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenarioString(tc.in)
			if err == nil {
				t.Fatalf("ParseScenario accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseScenarioCommentsAndWhitespace(t *testing.T) {
	sc, err := ParseScenarioString("  duration =  5s   # trailing comment\n\n# full-line comment\n\t[dataset d]\t\n[op query]\nweight = 1\ndataset = d\n")
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Duration != 5*time.Second || len(sc.Datasets) != 1 || len(sc.Ops) != 1 {
		t.Errorf("parsed = %+v", sc)
	}
}

// FuzzParseScenario checks the parser never panics and, when it
// accepts, yields an internally consistent scenario.
func FuzzParseScenario(f *testing.F) {
	f.Add(fullScenario)
	f.Add("duration = 5s\n[dataset d]\n[op topk]\nweight=1\ndataset=d\n")
	f.Add("[server]\nregistry_size = 1\n")
	f.Add("[op append]\nweight = 1\ndataset = \n")
	f.Add("duration")
	f.Add("[")
	f.Add("= value\nkey =\n==\n")
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseScenarioString(in)
		if err != nil {
			return
		}
		if sc.Duration <= 0 || sc.Concurrency <= 0 || sc.Rate <= 0 || sc.Burst <= 0 {
			t.Fatalf("accepted scenario with non-positive pacing: %+v", sc)
		}
		if sc.Warmup >= sc.Duration {
			t.Fatalf("accepted warmup %v >= duration %v", sc.Warmup, sc.Duration)
		}
		if len(sc.Ops) == 0 || sc.WeightSum() <= 0 {
			t.Fatalf("accepted scenario without a usable op mix: %+v", sc)
		}
		for _, op := range sc.Ops {
			if !validOp(op.Kind) || op.Weight <= 0 {
				t.Fatalf("accepted bad op %+v", op)
			}
			if op.Kind.needsDataset() && sc.Dataset(op.Dataset) == nil {
				t.Fatalf("accepted op %s with unresolved dataset %q", op.Kind, op.Dataset)
			}
		}
		for _, ds := range sc.Datasets {
			if ds.Rows <= 0 || ds.Cols < 3 || ds.AppendRows <= 0 {
				t.Fatalf("accepted bad dataset %+v", ds)
			}
		}
	})
}
