package load

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const (
	chaosTargetHost = "127.0.0.1:9001"
	chaosOtherHost  = "127.0.0.1:9002"
)

type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// countingRT is a base transport that records how many requests got
// through the chaos layer.
func countingRT(calls *atomic.Int32) http.RoundTripper {
	return rtFunc(func(*http.Request) (*http.Response, error) {
		calls.Add(1)
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader("")),
		}, nil
	})
}

func chaosReq(t *testing.T, host string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+host+"/cluster/health", nil)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	return req
}

func newTestChaos(t *testing.T, spec ChaosSpec) *ChaosController {
	t.Helper()
	c, err := NewChaosController(spec, "http://"+chaosTargetHost)
	if err != nil {
		t.Fatalf("NewChaosController: %v", err)
	}
	return c
}

// TestChaosPartitionSymmetric: while open, a symmetric partition cuts
// every link with exactly one endpoint at the target — other→target
// and target→other fail, other→other and target→target pass — and a
// closed (or healed) controller passes everything.
func TestChaosPartitionSymmetric(t *testing.T) {
	c := newTestChaos(t, ChaosSpec{Mode: ChaosPartition, Target: 1})
	var calls atomic.Int32
	other := c.Transport(0, countingRT(&calls))  // a non-target member
	target := c.Transport(1, countingRT(&calls)) // the target member

	if _, err := other.RoundTrip(chaosReq(t, chaosTargetHost)); err != nil {
		t.Fatalf("closed controller injected a fault: %v", err)
	}

	c.Open()
	if _, err := other.RoundTrip(chaosReq(t, chaosTargetHost)); !errors.Is(err, errInjected) {
		t.Errorf("other→target: err = %v, want injected fault", err)
	}
	if _, err := target.RoundTrip(chaosReq(t, chaosOtherHost)); !errors.Is(err, errInjected) {
		t.Errorf("target→other: err = %v, want injected fault (symmetric cut)", err)
	}
	if _, err := other.RoundTrip(chaosReq(t, chaosOtherHost)); err != nil {
		t.Errorf("other→other: err = %v, want pass (link does not touch the target)", err)
	}
	if _, err := target.RoundTrip(chaosReq(t, chaosTargetHost)); err != nil {
		t.Errorf("target→target: err = %v, want pass (not a cut link)", err)
	}
	if got := c.Injected(); got != 2 {
		t.Errorf("Injected = %d, want 2", got)
	}

	c.Close()
	if _, err := other.RoundTrip(chaosReq(t, chaosTargetHost)); err != nil {
		t.Errorf("healed controller still injecting: %v", err)
	}
}

// TestChaosPartitionAsymmetric: only traffic toward the target is cut;
// the target can still reach out — the one-way partition whose
// outbound heartbeats keep looking alive.
func TestChaosPartitionAsymmetric(t *testing.T) {
	c := newTestChaos(t, ChaosSpec{Mode: ChaosPartition, Target: 1, Asymmetric: true})
	var calls atomic.Int32
	other := c.Transport(0, countingRT(&calls))
	target := c.Transport(1, countingRT(&calls))
	c.Open()

	if _, err := other.RoundTrip(chaosReq(t, chaosTargetHost)); !errors.Is(err, errInjected) {
		t.Errorf("other→target: err = %v, want injected fault", err)
	}
	if _, err := target.RoundTrip(chaosReq(t, chaosOtherHost)); err != nil {
		t.Errorf("target→other: err = %v, want pass (asymmetric cut is inbound only)", err)
	}
}

// TestChaosErrorRateOne: error mode at rate 1 fails every affected
// request.
func TestChaosErrorRateOne(t *testing.T) {
	c := newTestChaos(t, ChaosSpec{Mode: ChaosError, Target: 1, ErrorRate: 1})
	var calls atomic.Int32
	tr := c.Transport(0, countingRT(&calls))
	c.Open()
	for i := 0; i < 20; i++ {
		if _, err := tr.RoundTrip(chaosReq(t, chaosTargetHost)); !errors.Is(err, errInjected) {
			t.Fatalf("request %d: err = %v, want injected fault at rate 1", i, err)
		}
	}
	if calls.Load() != 0 {
		t.Errorf("%d requests reached the base transport, want 0", calls.Load())
	}
}

// TestChaosLatency: latency mode delays affected requests but still
// delivers them; a canceled context aborts the injected wait.
func TestChaosLatency(t *testing.T) {
	c := newTestChaos(t, ChaosSpec{Mode: ChaosLatency, Target: 1, Latency: 20 * time.Millisecond})
	var calls atomic.Int32
	tr := c.Transport(0, countingRT(&calls))
	c.Open()

	start := time.Now()
	if _, err := tr.RoundTrip(chaosReq(t, chaosTargetHost)); err != nil {
		t.Fatalf("latency mode failed the request: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("request took %v, want >= the 20ms injected latency", elapsed)
	}
	if calls.Load() != 1 {
		t.Errorf("base transport saw %d calls, want 1", calls.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.RoundTrip(chaosReq(t, chaosTargetHost).WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled context: err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("canceled request reached the base transport")
	}
}

// TestChaosBlackhole: affected requests hang until the window heals
// (then complete) or their own deadline fires — never a fast error.
func TestChaosBlackhole(t *testing.T) {
	c := newTestChaos(t, ChaosSpec{Mode: ChaosBlackhole, Target: 1})
	var calls atomic.Int32
	tr := c.Transport(0, countingRT(&calls))
	c.Open()

	done := make(chan error, 1)
	go func() {
		_, err := tr.RoundTrip(chaosReq(t, chaosTargetHost))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blackholed request returned before the heal: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healed blackhole failed the request: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request still hung after the heal")
	}

	c.Open()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := tr.RoundTrip(chaosReq(t, chaosTargetHost).WithContext(ctx)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline inside a blackhole: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestChaosFlap: the cut half-cycle starts at open (cycle 0 is
// partitioned); with a short period, healthy half-cycles appear.
func TestChaosFlap(t *testing.T) {
	cut := newTestChaos(t, ChaosSpec{Mode: ChaosFlap, Target: 1, FlapPeriod: time.Hour})
	var calls atomic.Int32
	tr := cut.Transport(0, countingRT(&calls))
	cut.Open()
	if _, err := tr.RoundTrip(chaosReq(t, chaosTargetHost)); !errors.Is(err, errInjected) {
		t.Errorf("flap cycle 0: err = %v, want injected fault", err)
	}

	fast := newTestChaos(t, ChaosSpec{Mode: ChaosFlap, Target: 1, FlapPeriod: time.Millisecond})
	tr = fast.Transport(0, countingRT(&calls))
	fast.Open()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := tr.RoundTrip(chaosReq(t, chaosTargetHost)); err == nil {
			return // hit a healthy half-cycle
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("no healthy half-cycle observed within 1s of 1ms flapping")
}

const chaosScenarioText = `
duration = 12s

[cluster]
nodes = 3
heartbeat = 150ms
anti_entropy = 2s
ship_queue_bytes = 65536
catchup_wait = 750ms

[chaos]
mode = flap
target = 2
start = 2s
duration = 4s
flap_period = 250ms
asymmetric = yes
converge_within = 6s

[dataset d]

[op append]
weight = 1
dataset = d
`

func TestParseScenarioChaos(t *testing.T) {
	sc, err := ParseScenarioString(chaosScenarioText)
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	cl := sc.Cluster
	if cl.Nodes != 3 || cl.Heartbeat != 150*time.Millisecond || cl.AntiEntropy != 2*time.Second ||
		cl.ShipQueueBytes != 65536 || cl.CatchupWait != 750*time.Millisecond {
		t.Errorf("cluster = %+v", cl)
	}
	ch := sc.Chaos
	if ch == nil {
		t.Fatal("Chaos = nil")
	}
	if ch.Mode != ChaosFlap || ch.Target != 2 || ch.Start != 2*time.Second ||
		ch.Duration != 4*time.Second || ch.FlapPeriod != 250*time.Millisecond ||
		!ch.Asymmetric || ch.ConvergeWithin != 6*time.Second {
		t.Errorf("chaos = %+v", ch)
	}
}

func TestParseScenarioChaosDefaults(t *testing.T) {
	sc, err := ParseScenarioString(`
[cluster]
nodes = 2
[chaos]
duration = 3s
[dataset d]
[op topk]
weight = 1
dataset = d
`)
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	ch := sc.Chaos
	if ch.Mode != ChaosPartition || ch.Target != 1 || ch.Start != 0 ||
		ch.Latency != 200*time.Millisecond || ch.ErrorRate != 1 ||
		ch.FlapPeriod != 500*time.Millisecond || ch.Asymmetric ||
		ch.ConvergeWithin != 10*time.Second {
		t.Errorf("chaos defaults = %+v", ch)
	}
}

func TestParseScenarioChaosRejects(t *testing.T) {
	base := "[dataset d]\n[op topk]\nweight = 1\ndataset = d\n"
	cases := []struct {
		name, script, want string
	}{
		{"chaos without cluster", "[chaos]\nduration = 2s\n" + base,
			"needs a [cluster] section"},
		{"missing duration", "[cluster]\nnodes = 2\n[chaos]\ntarget = 0\n" + base,
			"declares no duration"},
		{"target out of range", "[cluster]\nnodes = 3\n[chaos]\nduration = 2s\ntarget = 3\n" + base,
			"out of range"},
		{"window past run end", "duration = 5s\n[cluster]\nnodes = 2\n[chaos]\nstart = 4s\nduration = 2s\n" + base,
			"must close before the run ends"},
		{"unknown mode", "[cluster]\nnodes = 2\n[chaos]\nduration = 2s\nmode = meltdown\n" + base,
			"unknown chaos mode"},
		{"error rate out of range", "[cluster]\nnodes = 2\n[chaos]\nduration = 2s\nerror_rate = 1.5\n" + base,
			"error_rate must be in (0, 1]"},
		{"bad asymmetric", "[cluster]\nnodes = 2\n[chaos]\nduration = 2s\nasymmetric = maybe\n" + base,
			"asymmetric must be a boolean"},
		{"negative queue cap", "[cluster]\nnodes = 2\nship_queue_bytes = -1\n" + base,
			"ship_queue_bytes must be positive"},
		{"duplicate chaos section", "[cluster]\nnodes = 2\n[chaos]\nduration = 2s\n[chaos]\nduration = 2s\n" + base,
			"duplicate [chaos] section"},
	}
	for _, tc := range cases {
		_, err := ParseScenarioString(tc.script)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}
