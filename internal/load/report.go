package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deepeye/deepeye/internal/obs"
)

// loadBuckets are the latency histogram bounds the reporter uses —
// much finer than obs.DefBuckets at the low end, because warm
// registry reads answer in microseconds.
var loadBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// outcome classifies one completed operation.
type outcome int

const (
	outOK      outcome = iota // 2xx
	outShed                   // 503 with reason "capacity" — expected under overload
	outError                  // anything else: non-2xx, transport failure, verification failure
	outSkipped                // no request issued (e.g. drop with an empty pool)
)

// opStats aggregates one op class.
type opStats struct {
	attempts atomic.Uint64
	ok       atomic.Uint64
	shed     atomic.Uint64
	errors   atomic.Uint64
	skipped  atomic.Uint64
	warmup   atomic.Uint64 // OK observations excluded from the histogram
	maxNs    atomic.Int64
	hist     *obs.Histogram
}

// Reporter collects client-side measurements for one run: per-op
// latency histograms (warmup excluded), outcome counts, per-route
// request counts for /metrics reconciliation, and a capped log of
// hard-error details. Safe for concurrent use by all workers.
type Reporter struct {
	reg       *obs.Registry
	ops       map[OpKind]*opStats
	statsOn   atomic.Bool // false during warmup
	startedAt time.Time
	statsFrom time.Time

	mu       sync.Mutex
	routes   map[string]*atomic.Uint64
	errs     []string // capped detail log
	errsOver int
}

// errLogCap bounds the per-run hard-error detail log.
const errLogCap = 64

// NewReporter builds a reporter covering the given op kinds.
func NewReporter(kinds []OpKind) *Reporter {
	r := &Reporter{reg: obs.NewRegistry(), ops: map[OpKind]*opStats{}, routes: map[string]*atomic.Uint64{}}
	for _, k := range kinds {
		if _, dup := r.ops[k]; dup {
			continue
		}
		r.ops[k] = &opStats{
			hist: r.reg.Histogram("load_op_duration_seconds", "Per-op latency.", loadBuckets, "op", string(k)),
		}
	}
	return r
}

// Start marks the run begin and the moment stats collection begins
// (after warmup).
func (r *Reporter) Start(now time.Time, warmup time.Duration) {
	r.startedAt = now
	r.statsFrom = now.Add(warmup)
	r.statsOn.Store(warmup == 0)
}

// EnableStats flips the reporter out of the warmup window.
func (r *Reporter) EnableStats() { r.statsOn.Store(true) }

// CountRoute records one client HTTP request by route path, for
// reconciliation against the server's request counters.
func (r *Reporter) CountRoute(route string) {
	r.mu.Lock()
	c := r.routes[route]
	if c == nil {
		c = &atomic.Uint64{}
		r.routes[route] = c
	}
	r.mu.Unlock()
	c.Add(1)
}

// Record notes one completed operation.
func (r *Reporter) Record(kind OpKind, d time.Duration, out outcome) {
	st := r.ops[kind]
	if st == nil {
		return
	}
	st.attempts.Add(1)
	switch out {
	case outOK:
		st.ok.Add(1)
		if !r.statsOn.Load() {
			st.warmup.Add(1)
			return
		}
		st.hist.Observe(d)
		for {
			prev := st.maxNs.Load()
			if int64(d) <= prev || st.maxNs.CompareAndSwap(prev, int64(d)) {
				break
			}
		}
	case outShed:
		st.shed.Add(1)
	case outError:
		st.errors.Add(1)
	case outSkipped:
		st.skipped.Add(1)
	}
}

// Error records one hard-error detail (capped; the count is always
// exact via Record).
func (r *Reporter) Error(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.errs) >= errLogCap {
		r.errsOver++
		return
	}
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// routeCounts snapshots the per-route client counters.
func (r *Reporter) routeCounts() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.routes))
	for route, c := range r.routes {
		out[route] = c.Load()
	}
	return out
}

// OpSummary is the wire form of one op class's results.
type OpSummary struct {
	Op         string  `json:"op"`
	Attempts   uint64  `json:"attempts"`
	OK         uint64  `json:"ok"`
	Shed       uint64  `json:"shed,omitempty"`
	Errors     uint64  `json:"errors,omitempty"`
	Skipped    uint64  `json:"skipped,omitempty"`
	WarmupOK   uint64  `json:"warmup_ok,omitempty"`
	Throughput float64 `json:"throughput_per_sec"` // measured-window OK/sec
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// MonitorSummary is the soak monitor's view of the server's runtime
// gauges over the run.
type MonitorSummary struct {
	Samples            int    `json:"samples"`
	GoroutineBaseline  int    `json:"goroutine_baseline"`
	GoroutineFinal     int    `json:"goroutine_final"`
	GoroutineMax       int    `json:"goroutine_max"`
	HeapBaselineBytes  uint64 `json:"heap_baseline_bytes"`
	HeapFinalBytes     uint64 `json:"heap_final_bytes"`
	SysBaselineBytes   uint64 `json:"sys_baseline_bytes"`
	SysFinalBytes      uint64 `json:"sys_final_bytes"`
	DrainedToBaseline  bool   `json:"drained_to_baseline"`
	DrainWaited        string `json:"drain_waited,omitempty"`
	MonitorScrapeFails int    `json:"monitor_scrape_fails,omitempty"`
}

// ChaosSummary reports one scripted fault window and the cluster's
// recovery from it. Reconverged is the chaos differential: after the
// fault healed, every member reported identical per-dataset epochs and
// fingerprints within the budget. MaxQueueBytes is the largest
// single-peer shipper queue observed on any member during the run —
// it must stay at or under QueueCapBytes for the backpressure bound to
// hold.
type ChaosSummary struct {
	Mode          string  `json:"mode"`
	Target        int     `json:"target"`
	WindowSeconds float64 `json:"window_seconds"`
	Injected      int     `json:"injected_faults"`
	Reconverged   bool    `json:"reconverged"`
	ReconvergeMs  float64 `json:"reconverge_ms,omitempty"`
	BudgetSeconds float64 `json:"budget_seconds"`
	Detail        string  `json:"detail,omitempty"` // last divergence seen while waiting
	MaxQueueBytes int64   `json:"max_queue_bytes,omitempty"`
	QueueCapBytes int64   `json:"queue_cap_bytes,omitempty"`
}

// Summary is the run's full result: what deepeye-load prints, writes
// as JSON, and gates on.
type Summary struct {
	Scenario        string        `json:"scenario,omitempty"`
	Target          string        `json:"target"`
	Duration        time.Duration `json:"-"`
	DurationSeconds float64       `json:"duration_seconds"`
	WarmupSeconds   float64       `json:"warmup_seconds,omitempty"`
	Concurrency     int           `json:"concurrency"`
	TargetRate      float64       `json:"target_rate_per_sec"`
	Soak            bool          `json:"soak,omitempty"`

	Ops        []OpSummary `json:"ops"`
	TotalOK    uint64      `json:"total_ok"`
	TotalShed  uint64      `json:"total_shed,omitempty"`
	TotalError uint64      `json:"total_errors"`
	Throughput float64     `json:"throughput_per_sec"`

	FingerprintChecks     uint64 `json:"fingerprint_checks"`
	FingerprintMismatches uint64 `json:"fingerprint_mismatches"`
	EpochRegressions      uint64 `json:"epoch_regressions"`
	Reregistered          uint64 `json:"reregistered,omitempty"` // evicted scenario datasets re-registered

	Reconciliation []RouteCount `json:"reconciliation,omitempty"`
	ReconcileOK    bool         `json:"reconcile_ok"`

	Monitor *MonitorSummary `json:"monitor,omitempty"`
	Chaos   *ChaosSummary   `json:"chaos,omitempty"`

	HardErrors          []string `json:"hard_errors,omitempty"`
	HardErrorsTruncated int      `json:"hard_errors_truncated,omitempty"`
}

// summarize folds the reporter into a Summary (gates and monitor data
// are filled in by the runner).
func (r *Reporter) summarize(sc *Scenario) *Summary {
	s := &Summary{
		Duration:        sc.Duration,
		DurationSeconds: sc.Duration.Seconds(),
		WarmupSeconds:   sc.Warmup.Seconds(),
		Concurrency:     sc.Concurrency,
		TargetRate:      sc.Rate,
		ReconcileOK:     true,
	}
	window := (sc.Duration - sc.Warmup).Seconds()
	if window <= 0 {
		window = sc.Duration.Seconds()
	}
	kinds := make([]string, 0, len(r.ops))
	for k := range r.ops {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := r.ops[OpKind(k)]
		measured := st.ok.Load() - st.warmup.Load()
		s.Ops = append(s.Ops, OpSummary{
			Op:         k,
			Attempts:   st.attempts.Load(),
			OK:         st.ok.Load(),
			Shed:       st.shed.Load(),
			Errors:     st.errors.Load(),
			Skipped:    st.skipped.Load(),
			WarmupOK:   st.warmup.Load(),
			Throughput: float64(measured) / window,
			P50Ms:      ms(st.hist.Quantile(0.50)),
			P95Ms:      ms(st.hist.Quantile(0.95)),
			P99Ms:      ms(st.hist.Quantile(0.99)),
			MaxMs:      float64(st.maxNs.Load()) / 1e6,
		})
		s.TotalOK += st.ok.Load()
		s.TotalShed += st.shed.Load()
		s.TotalError += st.errors.Load()
	}
	var measuredOK uint64
	for _, op := range s.Ops {
		measuredOK += op.OK - op.WarmupOK
	}
	s.Throughput = float64(measuredOK) / window
	r.mu.Lock()
	s.HardErrors = append([]string(nil), r.errs...)
	s.HardErrorsTruncated = r.errsOver
	r.mu.Unlock()
	return s
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the human-readable report table.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "target %s  duration %.0fs (warmup %.0fs)  concurrency %d  rate %.0f/s",
		s.Target, s.DurationSeconds, s.WarmupSeconds, s.Concurrency, s.TargetRate)
	if s.Soak {
		fmt.Fprintf(w, "  [soak]")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %9s %9s %6s %6s %10s %10s %10s %10s\n",
		"op", "ok", "err", "shed", "skip", "p50", "p95", "p99", "max")
	for _, op := range s.Ops {
		fmt.Fprintf(w, "%-10s %9d %9d %6d %6d %9.2fms %9.2fms %9.2fms %9.2fms\n",
			op.Op, op.OK, op.Errors, op.Shed, op.Skipped, op.P50Ms, op.P95Ms, op.P99Ms, op.MaxMs)
	}
	fmt.Fprintf(w, "total: %d ok, %d errors, %d shed — %.1f req/s measured\n",
		s.TotalOK, s.TotalError, s.TotalShed, s.Throughput)
	fmt.Fprintf(w, "verify: %d fingerprint checks, %d mismatches, %d epoch regressions, reconcile_ok=%v\n",
		s.FingerprintChecks, s.FingerprintMismatches, s.EpochRegressions, s.ReconcileOK)
	if m := s.Monitor; m != nil {
		fmt.Fprintf(w, "monitor: goroutines %d→%d (max %d, drained=%v), heap %.1fMiB→%.1fMiB, sys %.1fMiB→%.1fMiB\n",
			m.GoroutineBaseline, m.GoroutineFinal, m.GoroutineMax, m.DrainedToBaseline,
			float64(m.HeapBaselineBytes)/(1<<20), float64(m.HeapFinalBytes)/(1<<20),
			float64(m.SysBaselineBytes)/(1<<20), float64(m.SysFinalBytes)/(1<<20))
	}
	if c := s.Chaos; c != nil {
		fmt.Fprintf(w, "chaos: %s on node %d for %.1fs (%d faults injected), reconverged=%v",
			c.Mode, c.Target, c.WindowSeconds, c.Injected, c.Reconverged)
		if c.Reconverged {
			fmt.Fprintf(w, " in %.0fms", c.ReconvergeMs)
		} else if c.Detail != "" {
			fmt.Fprintf(w, " (%s)", c.Detail)
		}
		if c.QueueCapBytes > 0 {
			fmt.Fprintf(w, ", max shipper queue %.1fKiB (cap %.1fKiB)",
				float64(c.MaxQueueBytes)/(1<<10), float64(c.QueueCapBytes)/(1<<10))
		}
		fmt.Fprintln(w)
	}
	for _, e := range s.HardErrors {
		fmt.Fprintf(w, "error: %s\n", e)
	}
	if s.HardErrorsTruncated > 0 {
		fmt.Fprintf(w, "… and %d more errors\n", s.HardErrorsTruncated)
	}
}

// Gates are the pass/fail budgets a run is checked against.
type Gates struct {
	// FailOnError fails the run on any hard error (non-2xx/non-shed
	// response, transport failure, fingerprint or epoch violation).
	FailOnError bool
	// P99Ceiling fails any op class whose p99 exceeds it (0 = off).
	P99Ceiling time.Duration
	// MaxGoroutineGrowth fails when the server's goroutine gauge ends
	// more than this above its post-warmup baseline (0 = off).
	MaxGoroutineGrowth int
	// MaxSysGrowthBytes fails when the server's OS-claimed memory ends
	// more than this above baseline (0 = off).
	MaxSysGrowthBytes int64
	// RequireReconcile fails when client and server request counts
	// disagree on any route the client hit.
	RequireReconcile bool
}

// Check evaluates the gates; the error lists every violated budget.
func (s *Summary) Check(g Gates) error {
	var fails []string
	if g.FailOnError {
		if s.TotalError > 0 {
			fails = append(fails, fmt.Sprintf("%d hard errors", s.TotalError))
		}
		if s.FingerprintMismatches > 0 {
			fails = append(fails, fmt.Sprintf("%d fingerprint mismatches", s.FingerprintMismatches))
		}
		if s.EpochRegressions > 0 {
			fails = append(fails, fmt.Sprintf("%d epoch regressions", s.EpochRegressions))
		}
	}
	if g.P99Ceiling > 0 {
		for _, op := range s.Ops {
			if op.OK-op.WarmupOK == 0 {
				continue
			}
			if p99 := time.Duration(op.P99Ms * 1e6); p99 > g.P99Ceiling {
				fails = append(fails, fmt.Sprintf("op %s p99 %.2fms exceeds ceiling %v", op.Op, op.P99Ms, g.P99Ceiling))
			}
		}
	}
	if m := s.Monitor; m != nil {
		if g.MaxGoroutineGrowth > 0 && m.GoroutineFinal-m.GoroutineBaseline > g.MaxGoroutineGrowth {
			fails = append(fails, fmt.Sprintf("goroutines grew %d→%d (budget +%d)",
				m.GoroutineBaseline, m.GoroutineFinal, g.MaxGoroutineGrowth))
		}
		if g.MaxSysGrowthBytes > 0 && m.SysFinalBytes > m.SysBaselineBytes &&
			int64(m.SysFinalBytes-m.SysBaselineBytes) > g.MaxSysGrowthBytes {
			fails = append(fails, fmt.Sprintf("memory grew %d→%d bytes (budget +%d)",
				m.SysBaselineBytes, m.SysFinalBytes, g.MaxSysGrowthBytes))
		}
	}
	if g.RequireReconcile && !s.ReconcileOK {
		fails = append(fails, "client/server request counts do not reconcile")
	}
	// Chaos gates are unconditional: a run that scripted a fault is
	// meaningless unless the cluster healed from it and replication
	// memory stayed bounded.
	if c := s.Chaos; c != nil {
		if !c.Reconverged {
			detail := c.Detail
			if detail == "" {
				detail = "no convergence detail recorded"
			}
			fails = append(fails, fmt.Sprintf("cluster did not reconverge within %.1fs after %s chaos (%s)",
				c.BudgetSeconds, c.Mode, detail))
		}
		if c.QueueCapBytes > 0 && c.MaxQueueBytes > c.QueueCapBytes {
			fails = append(fails, fmt.Sprintf("shipper queue reached %d bytes, exceeding the %d-byte cap",
				c.MaxQueueBytes, c.QueueCapBytes))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("load gate failed: %s", strings.Join(fails, "; "))
	}
	return nil
}
