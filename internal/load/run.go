package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// opTimeout bounds one in-flight operation; the run's duration only
// stops issuing new ops, in-flight ones drain to completion.
const opTimeout = 60 * time.Second

// ephPoolCap bounds the ephemeral-dataset pool register/drop churns.
const ephPoolCap = 1024

// Config shapes one Run beyond what the scenario script declares.
type Config struct {
	// BaseURL targets the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs, when set, targets a replicated cluster: requests
	// round-robin across the members, dataset reads carry min_epoch
	// read-your-writes tokens, and reconciliation merges every member's
	// /metrics page (netting out peer-forwarded requests). Overrides
	// BaseURL.
	BaseURLs []string
	// Client overrides the HTTP client (nil builds a pooled default).
	Client *http.Client
	// Soak marks the run as a soak (recorded in the summary; soak gates
	// are expressed through Gates).
	Soak bool
	// DrainTimeout bounds the post-run wait for the server's goroutine
	// gauge to return to baseline (default 10s).
	DrainTimeout time.Duration
	// MonitorInterval is the runtime-gauge scrape cadence (default 500ms).
	MonitorInterval time.Duration
	// ScenarioPath labels the summary (optional).
	ScenarioPath string
	// GoroutineSlack is how far above baseline the goroutine gauge may
	// settle and still count as drained (default 10).
	GoroutineSlack int
	// Chaos, when set, scripts network faults between cluster members
	// during the run (cmd/deepeye-load builds it from the scenario's
	// [chaos] section and wires its transports into the in-process
	// nodes). The runner opens/closes the fault window on schedule and,
	// after healing, requires every member to reconverge to identical
	// per-dataset epochs and fingerprints within the spec's budget.
	Chaos *ChaosController
}

// dsState is one scenario dataset's live client-side state. mu
// serializes mutations (appends, re-registration) so the rolling
// fingerprint mirror stays faithful to the server's apply order.
type dsState struct {
	spec      DatasetSpec
	initial   []byte   // registration CSV, reproduced on re-register
	queries   []string // prebuilt vizql sources
	nlQueries []string // prebuilt natural-language questions

	mu        sync.Mutex
	mir       *mirror
	gen       *rowGen
	lastEpoch uint64
	epoch     uint64 // client-side incarnation counter for rereg races
}

// runner executes one scenario against one server (or cluster).
type runner struct {
	sc   *Scenario
	cfg  Config
	hc   *http.Client
	rep  *Reporter
	urls []string // request targets; len > 1 = cluster round-robin
	next atomic.Uint64

	ds map[string]*dsState

	ephMu  sync.Mutex
	eph    []string
	ephSeq atomic.Uint64

	fpChecks     atomic.Uint64
	fpMismatches atomic.Uint64
	epochRegress atomic.Uint64
	rereg        atomic.Uint64

	// maxQueueBytes tracks the largest single-peer shipper queue
	// observed on any member page over the run — the chaos gate's
	// bounded-backpressure assertion.
	maxQueueBytes atomic.Int64
}

// Run executes the scenario against cfg.BaseURL (or, for a cluster,
// round-robin across cfg.BaseURLs) and returns the measured summary.
// The returned error covers harness-level failures (setup, scenario
// problems); gate violations are evaluated separately via
// Summary.Check so callers can report before failing.
func Run(ctx context.Context, sc *Scenario, cfg Config) (*Summary, error) {
	urls := cfg.BaseURLs
	if len(urls) == 0 {
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("load: Config.BaseURL or Config.BaseURLs is required")
		}
		urls = []string{cfg.BaseURL}
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 500 * time.Millisecond
	}
	if cfg.GoroutineSlack <= 0 {
		cfg.GoroutineSlack = 10
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        sc.Concurrency * 2,
			MaxIdleConnsPerHost: sc.Concurrency * 2,
		}}
	}
	kinds := make([]OpKind, 0, len(sc.Ops))
	for _, op := range sc.Ops {
		kinds = append(kinds, op.Kind)
	}
	r := &runner{sc: sc, cfg: cfg, hc: hc, rep: NewReporter(kinds), urls: urls, ds: map[string]*dsState{}}

	// Baseline scrape before any counted client request: the server's
	// counters include the scrape's own request by the time the body
	// renders, so the baseline is self-consistent.
	before, err := r.scrapeRaw(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: baseline /metrics scrape: %w", err)
	}

	if err := r.setup(ctx); err != nil {
		return nil, err
	}

	mon := newMonitor(r, cfg.MonitorInterval)
	mon.start(ctx)

	r.rep.Start(time.Now(), sc.Warmup)
	issueCtx, cancelIssue := context.WithTimeout(ctx, sc.Duration)
	defer cancelIssue()
	if sc.Warmup > 0 {
		warm := time.AfterFunc(sc.Warmup, func() {
			r.rep.EnableStats()
			mon.markBaseline()
		})
		defer warm.Stop()
	} else {
		mon.markBaseline()
	}

	if cfg.Chaos != nil {
		spec := cfg.Chaos.Spec()
		openT := time.AfterFunc(spec.Start, cfg.Chaos.Open)
		closeT := time.AfterFunc(spec.Start+spec.Duration, cfg.Chaos.Close)
		defer openT.Stop()
		defer closeT.Stop()
	}

	pacer := NewPacer(sc.Rate, sc.Warmup, sc.Burst)
	var wg sync.WaitGroup
	for w := 0; w < sc.Concurrency; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(sc.Seed + int64(id)*7919))
			for {
				if err := pacer.Wait(issueCtx); err != nil {
					return
				}
				op := r.pickOp(rng)
				r.execute(ctx, op, rng)
			}
		}(w)
	}
	wg.Wait()

	// Heal any open fault, then require the cluster to reconverge to
	// identical per-dataset epochs and fingerprints before the final
	// fingerprint verification — the chaos differential: after the
	// fault window, every member must be bit-identical to the
	// single-node oracle the client mirror represents.
	var chaosSum *ChaosSummary
	if cfg.Chaos != nil {
		cfg.Chaos.Close()
		chaosSum = r.awaitReconvergence(ctx, cfg.Chaos)
	}

	// Post-run verification: every scenario dataset's served identity
	// must equal the client-side rolling mirror.
	r.verifyFingerprints(ctx)
	r.cleanup(ctx)

	monSum := mon.finish(ctx, cfg.DrainTimeout, cfg.GoroutineSlack)

	// The closing scrape counts itself on each server before the body
	// renders, so count every member's page client-side too and the
	// books balance.
	for range r.urls {
		r.rep.CountRoute("/metrics")
	}
	after, err := r.scrapeRaw(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: closing /metrics scrape: %w", err)
	}

	sum := r.rep.summarize(sc)
	sum.Scenario = cfg.ScenarioPath
	sum.Target = strings.Join(r.urls, ",")
	sum.Soak = cfg.Soak
	sum.FingerprintChecks = r.fpChecks.Load()
	sum.FingerprintMismatches = r.fpMismatches.Load()
	sum.EpochRegressions = r.epochRegress.Load()
	sum.Reregistered = r.rereg.Load()
	sum.Monitor = monSum
	if chaosSum != nil {
		chaosSum.MaxQueueBytes = r.maxQueueBytes.Load()
		chaosSum.QueueCapBytes = sc.Cluster.ShipQueueBytes
	}
	sum.Chaos = chaosSum
	sum.Reconciliation, sum.ReconcileOK = reconcile(before, after, r.rep.routeCounts())
	return sum, nil
}

// awaitReconvergence polls every member's /cluster/epochs after the
// fault heals until they report identical per-dataset epoch +
// fingerprint views, or the spec's budget expires. The polls are peer
// protocol traffic (/cluster/* is excluded from reconciliation), so
// they do not disturb the request ledger.
func (r *runner) awaitReconvergence(ctx context.Context, ctl *ChaosController) *ChaosSummary {
	spec := ctl.Spec()
	sum := &ChaosSummary{
		Mode:          spec.Mode,
		Target:        spec.Target,
		WindowSeconds: spec.Duration.Seconds(),
		Injected:      ctl.Injected(),
		BudgetSeconds: spec.ConvergeWithin.Seconds(),
	}
	if !r.clustered() {
		sum.Reconverged = true
		return sum
	}
	start := time.Now()
	deadline := start.Add(spec.ConvergeWithin)
	for {
		converged, detail := r.membersConverged(ctx)
		if converged {
			sum.Reconverged = true
			sum.ReconvergeMs = float64(time.Since(start)) / 1e6
			return sum
		}
		sum.Detail = detail
		if time.Now().After(deadline) || ctx.Err() != nil {
			r.rep.Error("chaos: cluster did not reconverge within %v: %s", spec.ConvergeWithin, detail)
			return sum
		}
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// membersConverged compares every member's epoch view against the
// first member's; any difference in dataset set, epoch, or fingerprint
// is divergence.
func (r *runner) membersConverged(ctx context.Context) (bool, string) {
	var ref map[string]string
	var refBase string
	for _, base := range r.urls {
		view, err := r.epochsOf(ctx, base)
		if err != nil {
			return false, err.Error()
		}
		if ref == nil {
			ref, refBase = view, base
			continue
		}
		if len(view) != len(ref) {
			return false, fmt.Sprintf("%s holds %d datasets, %s holds %d", base, len(view), refBase, len(ref))
		}
		for name, id := range ref {
			if view[name] != id {
				return false, fmt.Sprintf("%s and %s diverge on dataset %q (%s vs %s)", base, refBase, name, view[name], id)
			}
		}
	}
	return true, ""
}

// epochsOf fetches one member's dataset → "epoch/fingerprint" view.
func (r *runner) epochsOf(ctx context.Context, base string) (map[string]string, error) {
	ctx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cluster/epochs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/cluster/epochs: status %d", base, resp.StatusCode)
	}
	var view struct {
		Datasets []struct {
			Name        string `json:"name"`
			Epoch       uint64 `json:"epoch"`
			Fingerprint string `json:"fingerprint"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("GET %s/cluster/epochs: %w", base, err)
	}
	out := make(map[string]string, len(view.Datasets))
	for _, d := range view.Datasets {
		out[d.Name] = fmt.Sprintf("%d/%s", d.Epoch, d.Fingerprint)
	}
	return out, nil
}

// pickOp draws one mix entry by weight.
func (r *runner) pickOp(rng *rand.Rand) *OpSpec {
	target := rng.Float64() * r.sc.WeightSum()
	var cum float64
	for i := range r.sc.Ops {
		cum += r.sc.Ops[i].Weight
		if target < cum {
			return &r.sc.Ops[i]
		}
	}
	return &r.sc.Ops[len(r.sc.Ops)-1]
}

// --- HTTP plumbing ---------------------------------------------------

// wire forms of the server responses the harness inspects.
type identityResp struct {
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
	Rows        int    `json:"rows"`
}

type errResp struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// clustered reports whether the run targets multiple replicas.
func (r *runner) clustered() bool { return len(r.urls) > 1 }

// target picks the next request's base URL (round-robin when the run
// targets a cluster, so every member serves every op class).
func (r *runner) target() string {
	if len(r.urls) == 1 {
		return r.urls[0]
	}
	return r.urls[r.next.Add(1)%uint64(len(r.urls))]
}

// do issues one counted request and returns the status and body.
func (r *runner) do(ctx context.Context, method, path string, query url.Values, body []byte) (int, []byte, error) {
	r.rep.CountRoute(path)
	u := r.target() + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	ctx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "text/csv")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// scrapeRaw fetches every member's /metrics page, merged into one
// snapshot, without counting the requests client-side (callers that
// need the books to balance count one /metrics per member themselves).
func (r *runner) scrapeRaw(ctx context.Context) (*metricsSnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	var merged *metricsSnapshot
	for _, base := range r.urls {
		snap, err := r.scrapeOne(ctx, base)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = snap
		} else {
			merged.merge(snap)
		}
	}
	return merged, nil
}

func (r *runner) scrapeOne(ctx context.Context, base string) (*metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: status %d", base, resp.StatusCode)
	}
	snap, err := parseMetricsText(resp.Body)
	if err != nil {
		return nil, err
	}
	// Track the largest single-peer shipper queue seen on any page:
	// the chaos gate asserts replication memory stays bounded by the
	// configured cap while a peer is unreachable.
	if q := int64(snap.maxSeries("deepeye_cluster_queue_bytes")); q > 0 {
		for {
			prev := r.maxQueueBytes.Load()
			if q <= prev || r.maxQueueBytes.CompareAndSwap(prev, q) {
				break
			}
		}
	}
	return snap, nil
}

// shedReason extracts the machine-readable reason from a 503 body.
func shedReason(body []byte) string {
	var e errResp
	if json.Unmarshal(body, &e) == nil {
		return e.Reason
	}
	return ""
}

// classify maps a response to an outcome; 404 is surfaced separately
// because on dataset routes it means "evicted", which the caller
// handles by re-registering. Machine-readable 503s are sheds, not
// errors: "capacity" under overload, "peer_down" while a breaker
// isolates an unreachable member, "read_only" under durability
// degradation — all deliberate refusals the client is told to retry.
func classify(status int, body []byte) outcome {
	switch {
	case status >= 200 && status < 300:
		return outOK
	case status == http.StatusServiceUnavailable:
		switch shedReason(body) {
		case "capacity", "peer_down", "read_only":
			return outShed
		}
		return outError
	default:
		return outError
	}
}

// --- setup, verification, cleanup ------------------------------------

// setup registers every scenario dataset and seeds its mirror.
func (r *runner) setup(ctx context.Context) error {
	for i := range r.sc.Datasets {
		spec := r.sc.Datasets[i]
		initial, parsed, err := initialCSV(spec)
		if err != nil {
			return fmt.Errorf("load: generating dataset %q: %w", spec.Name, err)
		}
		st := &dsState{
			spec:      spec,
			initial:   initial,
			queries:   queriesFor(spec.Name, spec.Cols),
			nlQueries: nlqQueriesFor(spec.Cols),
			mir:       newMirror(parsed),
			gen:       newRowGen(spec, spec.Seed+1),
		}
		status, body, err := r.register(ctx, spec.Name, initial)
		if status == http.StatusConflict {
			// Leftover from a previous run against a long-lived server:
			// replace it.
			if _, _, err := r.do(ctx, http.MethodDelete, "/datasets/"+spec.Name, nil, nil); err != nil {
				return fmt.Errorf("load: replacing leftover dataset %q: %w", spec.Name, err)
			}
			status, body, err = r.register(ctx, spec.Name, initial)
			_ = err
		}
		if err != nil {
			return fmt.Errorf("load: registering dataset %q: %w", spec.Name, err)
		}
		if status != http.StatusCreated {
			return fmt.Errorf("load: registering dataset %q: status %d: %s", spec.Name, status, body)
		}
		var id identityResp
		if err := json.Unmarshal(body, &id); err != nil {
			return fmt.Errorf("load: registering dataset %q: decoding response: %w", spec.Name, err)
		}
		r.fpChecks.Add(1)
		if want := st.mir.fingerprint(); id.Fingerprint != want {
			r.fpMismatches.Add(1)
			r.rep.Error("dataset %s: register fingerprint %s, mirror expects %s", spec.Name, id.Fingerprint, want)
		}
		st.lastEpoch = id.Epoch
		r.ds[spec.Name] = st
	}
	return nil
}

func (r *runner) register(ctx context.Context, name string, csv []byte) (int, []byte, error) {
	return r.do(ctx, http.MethodPost, "/datasets", url.Values{"name": {name}}, csv)
}

// verifyFingerprints compares every scenario dataset's served
// identity against the client mirror after the workers drain. Against
// a cluster the read goes through whichever member round-robin lands
// on, carrying the last written epoch, so the check also pins the
// replication path: the serving replica's fingerprint at that epoch
// must be bit-identical to the client's rolling mirror.
func (r *runner) verifyFingerprints(ctx context.Context) {
	for name, st := range r.ds {
		var query url.Values
		if _, last := st.tokens(); r.clustered() && last > 0 {
			query = url.Values{"min_epoch": {strconv.FormatUint(last, 10)}}
		}
		status, body, err := r.do(ctx, http.MethodGet, "/datasets/"+name, query, nil)
		if err != nil || status == http.StatusNotFound {
			// Evicted right at the end — nothing to compare.
			continue
		}
		if status != http.StatusOK {
			r.rep.Error("dataset %s: final info status %d: %s", name, status, body)
			continue
		}
		var id identityResp
		if err := json.Unmarshal(body, &id); err != nil {
			r.rep.Error("dataset %s: final info decode: %v", name, err)
			continue
		}
		st.mu.Lock()
		want, rows := st.mir.fingerprint(), st.mir.rows
		st.mu.Unlock()
		r.fpChecks.Add(1)
		if id.Fingerprint != want || id.Rows != rows {
			r.fpMismatches.Add(1)
			r.rep.Error("dataset %s: final fingerprint %s (%d rows), mirror expects %s (%d rows)",
				name, id.Fingerprint, id.Rows, want, rows)
		}
	}
}

// cleanup drops everything the run created.
func (r *runner) cleanup(ctx context.Context) {
	for name := range r.ds {
		_, _, _ = r.do(ctx, http.MethodDelete, "/datasets/"+name, nil, nil)
	}
	r.ephMu.Lock()
	eph := append([]string(nil), r.eph...)
	r.eph = nil
	r.ephMu.Unlock()
	for _, name := range eph {
		_, _, _ = r.do(ctx, http.MethodDelete, "/datasets/"+name, nil, nil)
	}
}

// --- op execution ----------------------------------------------------

func (r *runner) execute(ctx context.Context, op *OpSpec, rng *rand.Rand) {
	start := time.Now()
	var out outcome
	switch op.Kind {
	case OpTopK:
		out = r.readOp(ctx, op, http.MethodGet, "/topk", url.Values{"k": {strconv.Itoa(op.K)}})
	case OpSearch:
		q := op.Q
		if q == "" {
			q = "region metric1"
		}
		out = r.readOp(ctx, op, http.MethodGet, "/search", url.Values{"q": {q}, "k": {strconv.Itoa(op.K)}})
	case OpQuery:
		st := r.ds[op.Dataset]
		q := op.Q
		if q == "" {
			q = st.queries[rng.Intn(len(st.queries))]
		}
		out = r.readOp(ctx, op, http.MethodGet, "/query", url.Values{"q": {q}})
	case OpNLQ:
		st := r.ds[op.Dataset]
		q := op.Q
		if q == "" {
			q = st.nlQueries[rng.Intn(len(st.nlQueries))]
		}
		out = r.readOp(ctx, op, http.MethodPost, "/nlq", url.Values{"q": {q}, "k": {strconv.Itoa(op.K)}})
	case OpAppend:
		out = r.appendOp(ctx, op)
	case OpRegister:
		out = r.registerOp(ctx, op, rng)
	case OpDrop:
		out = r.dropOp(ctx)
	default:
		return
	}
	r.rep.Record(op.Kind, time.Since(start), out)
}

// readOp runs one dataset read (topk/search/query, or the POSTed
// nlq), re-registering the dataset if the server evicted it. Against
// a cluster the read carries the dataset's last written epoch as a
// min_epoch token, so whichever replica answers must be caught up to
// the client's own writes (or transparently hand off to the leader,
// which is).
func (r *runner) readOp(ctx context.Context, op *OpSpec, method, suffix string, query url.Values) outcome {
	st := r.ds[op.Dataset]
	gen, last := st.tokens()
	if r.clustered() && last > 0 {
		query.Set("min_epoch", strconv.FormatUint(last, 10))
	}
	status, body, err := r.do(ctx, method, "/datasets/"+op.Dataset+suffix, query, nil)
	if err != nil {
		r.rep.Error("%s %s: %v", op.Kind, op.Dataset, err)
		return outError
	}
	if status == http.StatusNotFound {
		r.reregister(ctx, st, gen)
		return outSkipped
	}
	out := classify(status, body)
	if out == outError {
		r.rep.Error("%s %s: status %d: %.200s", op.Kind, op.Dataset, status, body)
	}
	return out
}

// appendOp generates a batch, posts it, and verifies the response's
// epoch and fingerprint against the rolling mirror. The dataset lock
// spans the request so the mirror observes the server's apply order.
func (r *runner) appendOp(ctx context.Context, op *OpSpec) outcome {
	st := r.ds[op.Dataset]
	st.mu.Lock()
	defer st.mu.Unlock()
	recs, body := st.gen.rows(st.spec.AppendRows, len(st.mir.cols))
	status, respBody, err := r.do(ctx, http.MethodPost, "/datasets/"+op.Dataset+"/rows", nil, body)
	if err != nil {
		r.rep.Error("append %s: %v", op.Dataset, err)
		return outError
	}
	if status == http.StatusNotFound {
		r.reregisterLocked(ctx, st)
		return outSkipped
	}
	out := classify(status, respBody)
	if out != outOK {
		if out == outError {
			r.rep.Error("append %s: status %d: %.200s", op.Dataset, status, respBody)
		}
		return out
	}
	var id identityResp
	if err := json.Unmarshal(respBody, &id); err != nil {
		r.rep.Error("append %s: decoding response: %v", op.Dataset, err)
		return outError
	}
	if id.Epoch <= st.lastEpoch {
		r.epochRegress.Add(1)
		r.rep.Error("append %s: epoch %d did not advance past %d", op.Dataset, id.Epoch, st.lastEpoch)
	}
	st.lastEpoch = id.Epoch
	for _, rec := range recs {
		st.mir.extend(rec)
	}
	r.fpChecks.Add(1)
	if want := st.mir.fingerprint(); id.Fingerprint != want {
		r.fpMismatches.Add(1)
		r.rep.Error("append %s: fingerprint %s, mirror expects %s after %d rows", op.Dataset, id.Fingerprint, want, st.mir.rows)
		return outError
	}
	return outOK
}

// registerOp registers a fresh ephemeral dataset into the churn pool.
func (r *runner) registerOp(ctx context.Context, op *OpSpec, rng *rand.Rand) outcome {
	r.ephMu.Lock()
	full := len(r.eph) >= ephPoolCap
	r.ephMu.Unlock()
	if full {
		return outSkipped
	}
	seq := r.ephSeq.Add(1)
	name := fmt.Sprintf("eph-%d", seq)
	spec := DatasetSpec{Name: name, Rows: op.Rows, Cols: op.Cols, Seed: r.sc.Seed + int64(seq)}
	csv, _, err := initialCSV(spec)
	if err != nil {
		r.rep.Error("register %s: generating: %v", name, err)
		return outError
	}
	status, body, err := r.register(ctx, name, csv)
	if err != nil {
		r.rep.Error("register %s: %v", name, err)
		return outError
	}
	out := classify(status, body)
	if out == outOK {
		r.ephMu.Lock()
		r.eph = append(r.eph, name)
		r.ephMu.Unlock()
	} else if out == outError {
		r.rep.Error("register %s: status %d: %.200s", name, status, body)
	}
	return out
}

// dropOp deletes one pooled ephemeral dataset; 404 is fine (the
// server may have TTL/LRU-evicted it first).
func (r *runner) dropOp(ctx context.Context) outcome {
	r.ephMu.Lock()
	if len(r.eph) == 0 {
		r.ephMu.Unlock()
		return outSkipped
	}
	name := r.eph[len(r.eph)-1]
	r.eph = r.eph[:len(r.eph)-1]
	r.ephMu.Unlock()
	status, body, err := r.do(ctx, http.MethodDelete, "/datasets/"+name, nil, nil)
	if err != nil {
		r.rep.Error("drop %s: %v", name, err)
		return outError
	}
	if status == http.StatusNotFound {
		return outOK // evicted before we dropped it — still gone
	}
	out := classify(status, body)
	if out == outError {
		r.rep.Error("drop %s: status %d: %.200s", name, status, body)
	}
	return out
}

// --- eviction recovery -----------------------------------------------

// tokens snapshots the client-side incarnation counter and the last
// server epoch this client observed for the dataset (the
// read-your-writes token).
func (st *dsState) tokens() (gen, lastEpoch uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch, st.lastEpoch
}

// reregister re-creates an evicted scenario dataset unless another
// worker already did (the incarnation counter detects that).
func (r *runner) reregister(ctx context.Context, st *dsState, sawGen uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.epoch != sawGen {
		return // someone else re-registered since we observed the 404
	}
	r.reregisterLocked(ctx, st)
}

// reregisterLocked resets the mirror and re-registers the initial
// content. Callers hold st.mu.
func (r *runner) reregisterLocked(ctx context.Context, st *dsState) {
	status, body, err := r.register(ctx, st.spec.Name, st.initial)
	if err != nil {
		r.rep.Error("reregister %s: %v", st.spec.Name, err)
		return
	}
	if status == http.StatusConflict {
		// A racing worker won; its mirror reset already happened.
		return
	}
	if status != http.StatusCreated {
		if classify(status, body) == outError {
			r.rep.Error("reregister %s: status %d: %.200s", st.spec.Name, status, body)
		}
		return
	}
	_, parsed, err := initialCSV(st.spec)
	if err != nil {
		r.rep.Error("reregister %s: rebuilding mirror: %v", st.spec.Name, err)
		return
	}
	var id identityResp
	if err := json.Unmarshal(body, &id); err != nil {
		r.rep.Error("reregister %s: decoding response: %v", st.spec.Name, err)
		return
	}
	st.mir = newMirror(parsed)
	st.gen = newRowGen(st.spec, st.spec.Seed+1)
	st.lastEpoch = id.Epoch
	st.epoch++
	r.rereg.Add(1)
	r.fpChecks.Add(1)
	if want := st.mir.fingerprint(); id.Fingerprint != want {
		r.fpMismatches.Add(1)
		r.rep.Error("reregister %s: fingerprint %s, mirror expects %s", st.spec.Name, id.Fingerprint, want)
	}
}

// --- soak monitor ----------------------------------------------------

// monitor samples the server's runtime gauges (exported on /metrics)
// through the run; the soak gate reads its baseline/final deltas.
type monitor struct {
	r        *runner
	interval time.Duration

	mu         sync.Mutex
	baselined  bool
	wantBase   atomic.Bool
	samples    int
	fails      int
	base, last struct {
		gor       int
		heap, sys uint64
	}
	maxGor int

	stop chan struct{}
	done chan struct{}
}

func newMonitor(r *runner, interval time.Duration) *monitor {
	return &monitor{r: r, interval: interval, stop: make(chan struct{}), done: make(chan struct{})}
}

func (m *monitor) start(ctx context.Context) {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				m.sample(ctx)
			}
		}
	}()
}

// markBaseline makes the next sample the leak-budget baseline.
func (m *monitor) markBaseline() { m.wantBase.Store(true) }

func (m *monitor) sample(ctx context.Context) {
	for range m.r.urls {
		m.r.rep.CountRoute("/metrics")
	}
	snap, err := m.r.scrapeRaw(ctx)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.fails++
		return
	}
	m.samples++
	m.last.gor = int(snap.gauge("deepeye_go_goroutines"))
	m.last.heap = uint64(snap.gauge("deepeye_go_heap_alloc_bytes"))
	m.last.sys = uint64(snap.gauge("deepeye_go_sys_bytes"))
	if m.last.gor > m.maxGor {
		m.maxGor = m.last.gor
	}
	if m.wantBase.Load() && !m.baselined {
		m.base = m.last
		m.baselined = true
	}
}

// finish stops the ticker, then polls until the goroutine gauge
// settles back within slack of baseline or the drain timeout expires.
func (m *monitor) finish(ctx context.Context, drainTimeout time.Duration, slack int) *MonitorSummary {
	close(m.stop)
	<-m.done

	deadline := time.Now().Add(drainTimeout)
	drained := false
	var waited time.Duration
	for {
		m.sample(ctx)
		m.mu.Lock()
		if m.baselined && m.last.gor <= m.base.gor+slack {
			drained = true
		}
		m.mu.Unlock()
		if drained || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
		waited += 100 * time.Millisecond
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.baselined {
		// Run too short for a post-warmup sample: fall back to the
		// final sample so deltas read as zero, not as a huge leak.
		m.base = m.last
	}
	return &MonitorSummary{
		Samples:            m.samples,
		GoroutineBaseline:  m.base.gor,
		GoroutineFinal:     m.last.gor,
		GoroutineMax:       m.maxGor,
		HeapBaselineBytes:  m.base.heap,
		HeapFinalBytes:     m.last.heap,
		SysBaselineBytes:   m.base.sys,
		SysFinalBytes:      m.last.sys,
		DrainedToBaseline:  drained,
		DrainWaited:        waited.String(),
		MonitorScrapeFails: m.fails,
	}
}
