package load

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"github.com/deepeye/deepeye/internal/datagen"
	"github.com/deepeye/deepeye/internal/dataset"
)

// buildSpec maps a scenario dataset onto a datagen recipe: one skewed
// categorical ("region"), one temporal ("when"), one uniform metric
// ("metric1"), one derived metric correlated with it ("metric2"), then
// alternating normal/heavy-tail metrics — the same planted structure
// the experiment corpus uses, so every op class (group-by bars, binned
// lines, scatters) has something to find.
func buildSpec(ds DatasetSpec) datagen.Spec {
	cols := []datagen.Col{
		{Name: "region", Kind: datagen.KindCategory, K: 6},
		{Name: "when", Kind: datagen.KindTime},
		{Name: "metric1", Kind: datagen.KindUniform, Lo: 0, Hi: 1000},
	}
	for i := 4; i <= ds.Cols; i++ {
		name := fmt.Sprintf("metric%d", i-2)
		switch i % 3 {
		case 0:
			cols = append(cols, datagen.Col{Name: name, Kind: datagen.KindDerived, Base: "metric1", Scale: 2, Noise: 25})
		case 1:
			cols = append(cols, datagen.Col{Name: name, Kind: datagen.KindNormal, Mu: 50, Sigma: 12})
		default:
			cols = append(cols, datagen.Col{Name: name, Kind: datagen.KindHeavyTail, Lo: 0, Hi: 500})
		}
	}
	return datagen.Spec{Name: ds.Name, Tuples: ds.Rows, Cols: cols, Seed: ds.Seed}
}

// initialCSV materializes the dataset's registration payload. The
// bytes are deterministic in the spec, so re-registering after an
// eviction reproduces the identical initial content.
func initialCSV(ds DatasetSpec) ([]byte, *dataset.Table, error) {
	tab, err := datagen.Generate(buildSpec(ds))
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		return nil, nil, err
	}
	// Reparse the CSV exactly as the server will: the parsed table's
	// column types and fingerprint are the reference the harness
	// verifies server responses against.
	parsed, err := dataset.FromCSV(ds.Name, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), parsed, nil
}

// mirror tracks one registered dataset's expected identity: a rolling
// dataset.Hasher fed the same cells the server ingests, so every
// append response's fingerprint can be verified in O(1) memory even
// on hours-long soak runs.
type mirror struct {
	cols   []*dataset.Column // schema reference for null semantics
	hasher *dataset.Hasher
	rows   int
}

// newMirror starts a mirror over the parsed initial table.
func newMirror(tab *dataset.Table) *mirror {
	m := &mirror{cols: tab.Columns, hasher: dataset.NewHasher(tab.Columns), rows: tab.NumRows()}
	for i := 0; i < tab.NumRows(); i++ {
		for _, c := range tab.Columns {
			m.hasher.WriteCell(c.RawAt(i), c.IsNull(i))
		}
	}
	return m
}

// extend feeds one appended row (already width-matched to the schema)
// through the same null semantics Column.AppendCell applies.
func (m *mirror) extend(row []string) {
	for j, c := range m.cols {
		m.hasher.WriteCell(row[j], c.CellIsNull(row[j]))
	}
	m.rows++
}

// fingerprint is the expected digest after every row fed so far.
func (m *mirror) fingerprint() string { return m.hasher.Sum() }

// rowGen produces append payloads matching a dataset's schema,
// deterministic in its seed. Cells always parse under the registered
// column types (labels from the same set datagen used, timestamps in
// a recognized layout, plain floats), so appended rows never flip a
// column's inferred type on a cold rebuild.
type rowGen struct {
	spec DatasetSpec
	rng  *rand.Rand
	base time.Time
}

func newRowGen(spec DatasetSpec, seed int64) *rowGen {
	return &rowGen{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		base: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// row generates one CSV record: region label, timestamp, then the
// numeric metrics.
func (g *rowGen) row(cols int) []string {
	out := make([]string, cols)
	out[0] = fmt.Sprintf("region_%c0", 'A'+rune(g.rng.Intn(6)))
	out[1] = g.base.Add(time.Duration(g.rng.Int63n(int64(365 * 24 * time.Hour)))).Format("2006-01-02 15:04:05")
	for j := 2; j < cols; j++ {
		out[j] = strconv.FormatFloat(g.rng.Float64()*1000, 'f', 3, 64)
	}
	return out
}

// rows generates an n-row CSV batch body for POST /datasets/{id}/rows.
func (g *rowGen) rows(n, cols int) ([][]string, []byte) {
	recs := make([][]string, n)
	var buf bytes.Buffer
	for i := range recs {
		recs[i] = g.row(cols)
		for j, cell := range recs[i] {
			if j > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(cell)
		}
		buf.WriteByte('\n')
	}
	return recs, buf.Bytes()
}

// queriesFor prebuilds valid vizql sources for a generated dataset —
// the query op draws from these. The metric1/metric2 scatter needs at
// least four columns.
func queriesFor(name string, cols int) []string {
	qs := []string{
		fmt.Sprintf("VISUALIZE bar SELECT region, SUM(metric1) FROM %s GROUP BY region", name),
		fmt.Sprintf("VISUALIZE line SELECT when, AVG(metric1) FROM %s BIN when BY MONTH ORDER BY when", name),
	}
	if cols >= 4 {
		qs = append(qs, fmt.Sprintf("VISUALIZE scatter SELECT metric1, metric2 FROM %s", name))
	}
	return qs
}

// nlqQueriesFor prebuilds natural-language questions valid for a
// generated dataset's schema — the nlq op draws from these. Every
// phrasing must parse (a no-intent 400 counts as a hard error), so the
// questions name real columns from buildSpec.
func nlqQueriesFor(cols int) []string {
	qs := []string{
		"total metric1 by region",
		"monthly average metric1",
		"top 3 regions by total metric1",
		"count by region",
		"metric1 share by region",
	}
	if cols >= 4 {
		qs = append(qs, "metric1 versus metric2")
	}
	return qs
}
