package load

import (
	"net/http"
	"os"
	"testing"
	"time"

	"github.com/deepeye/deepeye/internal/cluster"
	"github.com/deepeye/deepeye/internal/obs"
	"github.com/deepeye/deepeye/internal/registry"
)

// TestBreakerLatencyExperiment measures, against a blackholed peer
// (SYN-dropped, not connection-refused), the per-request latency of a
// forwarded call with the breaker closed (stacks the full PeerTimeout)
// versus tripped (fast ErrPeerDown shed). Run with:
//
//	DEEPEYE_EXPERIMENTS=1 go test -run TestBreakerLatencyExperiment -v ./internal/load/
func TestBreakerLatencyExperiment(t *testing.T) {
	if os.Getenv("DEEPEYE_EXPERIMENTS") == "" {
		t.Skip("set DEEPEYE_EXPERIMENTS=1 to run")
	}
	peer := "http://127.0.0.1:9999"
	chaos, err := NewChaosController(ChaosSpec{
		Mode:     ChaosBlackhole,
		Start:    0,
		Duration: time.Hour,
	}, peer)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Open()
	defer chaos.Close()

	reg := registry.New(registry.Config{Obs: obs.NewRegistry()})
	n, err := cluster.New(cluster.Config{
		Self:             "http://self.test",
		Peers:            []string{"http://self.test", peer},
		Registry:         reg,
		Obs:              obs.NewRegistry(),
		Client:           &http.Client{Transport: chaos.Transport(99, nil)},
		PeerTimeout:      2 * time.Second,
		BreakerThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	do := func() (time.Duration, error) {
		req, _ := http.NewRequest("GET", peer+"/cluster/epochs", nil)
		start := time.Now()
		resp, err := n.PeerDo(peer, req)
		if resp != nil {
			resp.Body.Close()
		}
		return time.Since(start), err
	}

	d, err := do()
	t.Logf("breaker closed, blackholed peer: %v (err=%v)", d, err)

	var total time.Duration
	const reps = 1000
	for i := 0; i < reps; i++ {
		d, err = do()
		if err == nil {
			t.Fatalf("rep %d: expected fast-fail, got success", i)
		}
		total += d
	}
	t.Logf("breaker open, fast-fail mean over %d calls: %v (last err=%v)", reps, total/reps, err)
}
