// Package load is DeepEye's script-driven load harness: a scenario
// file declares a weighted mix of operations (register, append, topk,
// search, query, nlq, drop) over generated datasets, a deterministic
// token-bucket pacer drives N worker goroutines against a real
// deepeye-server over HTTP, and a reporter aggregates per-op latency
// quantiles, throughput, and error counts — cross-checked against the
// server's own /metrics counters.
//
// The harness is also a correctness gate: every append response's
// fingerprint is verified against a client-side rolling
// dataset.Hasher mirror, epochs must advance monotonically, and soak
// runs watch the server's runtime gauges for goroutine and memory
// growth. cmd/deepeye-load is the CLI; `make load-smoke` runs the
// canned CI scenario.
//
// Scenario files are line-oriented `key = value` blocks (stdlib-only
// parsing, no dependencies):
//
//	# header keys before any section
//	duration = 15s
//	warmup = 2s        # rate ramps up over this window; stats exclude it
//	concurrency = 8
//	rate = 150         # target ops/sec across all workers
//	seed = 42
//
//	[server]           # in-process mode only (-inprocess)
//	registry_size = 67108864
//	dataset_ttl = 1m
//
//	[cluster]          # in-process mode boots a replicated cluster
//	nodes = 3          # members; writes route to per-dataset leaders
//
//	[dataset sales]    # generated via internal/datagen, deterministic
//	rows = 300
//	cols = 5
//	append_rows = 8    # rows per append batch targeting this dataset
//
//	[op topk]          # one block per mix entry; weights are relative
//	weight = 4
//	dataset = sales
//	k = 5
//
// Parse errors carry the offending line number.
package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// OpKind names one operation class in the mix.
type OpKind string

// The operation classes a scenario can mix.
const (
	OpRegister OpKind = "register" // register a fresh ephemeral dataset
	OpAppend   OpKind = "append"   // append generated rows to a scenario dataset
	OpTopK     OpKind = "topk"     // GET /datasets/{id}/topk
	OpSearch   OpKind = "search"   // GET /datasets/{id}/search
	OpQuery    OpKind = "query"    // GET /datasets/{id}/query
	OpNLQ      OpKind = "nlq"      // POST /datasets/{id}/nlq (natural-language ask)
	OpDrop     OpKind = "drop"     // drop one previously registered ephemeral dataset
)

func validOp(k OpKind) bool {
	switch k {
	case OpRegister, OpAppend, OpTopK, OpSearch, OpQuery, OpNLQ, OpDrop:
		return true
	}
	return false
}

// needsDataset reports whether the op targets a declared scenario
// dataset (register creates its own; drop consumes registered ones).
func (k OpKind) needsDataset() bool {
	switch k {
	case OpAppend, OpTopK, OpSearch, OpQuery, OpNLQ:
		return true
	}
	return false
}

// DatasetSpec declares one generated scenario dataset. The content is
// deterministic in (Name, Rows, Cols, Seed) — see payload.go.
type DatasetSpec struct {
	Name       string
	Rows       int   // initial row count (default 200)
	Cols       int   // column count ≥ 3: category, time, numerics (default 4)
	Seed       int64 // datagen seed (default scenario seed)
	AppendRows int   // rows per append batch (default 5)
	Line       int   // declaration line, for error reporting
}

// OpSpec is one weighted entry in the operation mix.
type OpSpec struct {
	Kind    OpKind
	Weight  float64
	Dataset string // append/topk/search/query/nlq: target scenario dataset
	K       int    // topk/search/nlq k parameter (default 5)
	Q       string // search keywords / vizql source / NL question override (optional)
	Rows    int    // register: rows per ephemeral dataset (default 40)
	Cols    int    // register: cols per ephemeral dataset (default 4)
	Line    int
}

// ServerConfig shapes the in-process server cmd/deepeye-load builds
// with -inprocess; ignored when targeting an external -addr.
type ServerConfig struct {
	RegistrySize    int64         // registry byte budget (default 256 MiB)
	CacheSize       int64         // result cache byte budget (default 64 MiB)
	DatasetTTL      time.Duration // idle eviction TTL (default 0 = never)
	DataDir         string        // WAL directory; "auto" = fresh temp dir
	WALCompactBytes int64         // WAL compaction threshold (default 64 MiB)
	MaxInFlight     int           // concurrency limiter (default 256)
	Timeout         time.Duration // per-request deadline (default 30s)
	Workers         int           // per-request pipeline workers (default 1)
}

// ClusterConfig asks cmd/deepeye-load's in-process mode to boot a
// replicated cluster instead of a single server: Nodes full members
// (each with its own registry, WAL, and metrics page) wired through
// internal/cluster, with the harness round-robining requests across
// them and carrying read-your-writes epoch tokens on dataset reads.
// Ignored when targeting an external server unless -addr lists
// multiple peers.
type ClusterConfig struct {
	Nodes          int           // cluster members; 0 = single node (default)
	Heartbeat      time.Duration // failure-detector probe interval (0 = disabled)
	AntiEntropy    time.Duration // anti-entropy repair interval (0 = disabled)
	ShipQueueBytes int64         // per-peer shipper queue cap (0 = node default)
	CatchupWait    time.Duration // follower read catch-up budget (0 = node default)
	Line           int           // declaration line, for error reporting
}

// The chaos fault modes a scenario can inject on the inter-node links
// of an in-process cluster.
const (
	ChaosPartition = "partition" // drop requests touching the target with a transport error
	ChaosBlackhole = "blackhole" // hang requests touching the target until the window closes
	ChaosLatency   = "latency"   // delay requests touching the target by a fixed amount
	ChaosError     = "error"     // fail a fraction of requests touching the target
	ChaosFlap      = "flap"      // alternate partitioned/healthy on a period
)

// ChaosSpec scripts one fault window against an in-process cluster:
// at Start into the run the controller begins injecting Mode faults on
// every inter-node link touching node index Target; at Start+Duration
// the fault heals. After the workers drain, the harness requires every
// member to reconverge to identical per-dataset epochs and
// fingerprints within ConvergeWithin — the chaos differential that
// keeps the cluster bit-identical to the single-node oracle.
type ChaosSpec struct {
	Start          time.Duration // offset into the run when the fault opens (default 0)
	Duration       time.Duration // fault window length (required)
	Target         int           // member index the fault isolates (default 1: a follower)
	Mode           string        // partition|blackhole|latency|error|flap (default partition)
	Latency        time.Duration // latency mode: injected delay per request (default 200ms)
	ErrorRate      float64       // error mode: failure fraction 0..1 (default 1)
	FlapPeriod     time.Duration // flap mode: half-cycle period (default 500ms)
	Asymmetric     bool          // drop only traffic toward the target, not from it
	ConvergeWithin time.Duration // post-heal reconvergence budget (default 10s)
	Line           int           // declaration line, for error reporting
}

// Scenario is a parsed, validated load script.
type Scenario struct {
	Duration    time.Duration // total run length, warmup included (default 10s)
	Warmup      time.Duration // ramp-up window excluded from stats (default 0)
	Concurrency int           // worker goroutines (default 4)
	Rate        float64       // target ops/sec across all workers (default 50)
	Burst       int           // token-bucket capacity (default = concurrency)
	Seed        int64         // RNG seed for op choice and payloads (default 1)
	Server      ServerConfig
	Cluster     ClusterConfig
	Chaos       *ChaosSpec // nil when no [chaos] section is declared
	Datasets    []DatasetSpec
	Ops         []OpSpec
}

// Dataset returns the declared dataset spec by name (nil if absent).
func (s *Scenario) Dataset(name string) *DatasetSpec {
	for i := range s.Datasets {
		if s.Datasets[i].Name == name {
			return &s.Datasets[i]
		}
	}
	return nil
}

// WeightSum is the total of all op weights.
func (s *Scenario) WeightSum() float64 {
	var sum float64
	for _, op := range s.Ops {
		sum += op.Weight
	}
	return sum
}

// scanErr formats a parse/validation error with its line number.
func scanErr(line int, format string, args ...any) error {
	return fmt.Errorf("scenario line %d: %s", line, fmt.Sprintf(format, args...))
}

// section tracks what the current `key = value` lines bind to.
type section int

const (
	secHeader section = iota
	secServer
	secCluster
	secChaos
	secDataset
	secOp
)

// ParseScenario parses and validates a scenario script. Every error
// names the offending line.
func ParseScenario(r io.Reader) (*Scenario, error) {
	sc := &Scenario{
		Duration:    10 * time.Second,
		Concurrency: 4,
		Rate:        50,
		Seed:        1,
		Server: ServerConfig{
			RegistrySize:    256 << 20,
			CacheSize:       64 << 20,
			WALCompactBytes: 64 << 20,
			MaxInFlight:     256,
			Timeout:         30 * time.Second,
			Workers:         1,
		},
	}
	cur := secHeader
	var curDS *DatasetSpec
	var curOp *OpSpec
	seenServer := false
	seenCluster := false
	seenHeader := map[string]int{}
	seenKey := map[string]int{} // per-section duplicate detection

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n := 0
	for scanner.Scan() {
		n++
		line := strings.TrimSpace(scanner.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, scanErr(n, "unterminated section header %q", line)
			}
			head := strings.Fields(strings.TrimSpace(line[1 : len(line)-1]))
			seenKey = map[string]int{}
			switch {
			case len(head) == 1 && head[0] == "server":
				if seenServer {
					return nil, scanErr(n, "duplicate [server] section")
				}
				seenServer = true
				cur = secServer
			case len(head) == 1 && head[0] == "cluster":
				if seenCluster {
					return nil, scanErr(n, "duplicate [cluster] section")
				}
				seenCluster = true
				sc.Cluster.Line = n
				cur = secCluster
			case len(head) == 1 && head[0] == "chaos":
				if sc.Chaos != nil {
					return nil, scanErr(n, "duplicate [chaos] section")
				}
				sc.Chaos = &ChaosSpec{
					Target: 1, Mode: ChaosPartition, Latency: 200 * time.Millisecond,
					ErrorRate: 1, FlapPeriod: 500 * time.Millisecond,
					ConvergeWithin: 10 * time.Second, Line: n,
				}
				cur = secChaos
			case len(head) == 2 && head[0] == "dataset":
				name := head[1]
				if sc.Dataset(name) != nil {
					return nil, scanErr(n, "duplicate dataset name %q", name)
				}
				sc.Datasets = append(sc.Datasets, DatasetSpec{Name: name, Rows: 200, Cols: 4, Seed: -1, AppendRows: 5, Line: n})
				curDS = &sc.Datasets[len(sc.Datasets)-1]
				cur = secDataset
			case len(head) == 2 && head[0] == "op":
				kind := OpKind(head[1])
				if !validOp(kind) {
					return nil, scanErr(n, "unknown op %q (want register|append|topk|search|query|nlq|drop)", head[1])
				}
				sc.Ops = append(sc.Ops, OpSpec{Kind: kind, Weight: -1, K: 5, Rows: 40, Cols: 4, Line: n})
				curOp = &sc.Ops[len(sc.Ops)-1]
				cur = secOp
			default:
				return nil, scanErr(n, "malformed section header %q (want [server], [cluster], [chaos], [dataset NAME], or [op NAME])", line)
			}
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, scanErr(n, "malformed line %q (want key = value)", line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "" || val == "" {
			return nil, scanErr(n, "malformed line %q (empty key or value)", line)
		}
		if prev, dup := seenKey[key]; dup && cur != secHeader {
			return nil, scanErr(n, "duplicate key %q (first set on line %d)", key, prev)
		}
		seenKey[key] = n

		var err error
		switch cur {
		case secHeader:
			if prev, dup := seenHeader[key]; dup {
				return nil, scanErr(n, "duplicate key %q (first set on line %d)", key, prev)
			}
			seenHeader[key] = n
			err = sc.setHeader(key, val, n)
		case secServer:
			err = sc.Server.set(key, val, n)
		case secCluster:
			err = sc.Cluster.set(key, val, n)
		case secChaos:
			err = sc.Chaos.set(key, val, n)
		case secDataset:
			err = curDS.set(key, val, n)
		case secOp:
			err = curOp.set(key, val, n)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("scenario: reading script: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ParseScenarioString is a convenience wrapper for in-memory scripts.
func ParseScenarioString(s string) (*Scenario, error) {
	return ParseScenario(strings.NewReader(s))
}

func parseDur(key, val string, line int) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, scanErr(line, "%s: %v", key, err)
	}
	return d, nil
}

func parseInt(key, val string, line int) (int, error) {
	v, err := strconv.Atoi(val)
	if err != nil {
		return 0, scanErr(line, "%s: %v", key, err)
	}
	return v, nil
}

func parseInt64(key, val string, line int) (int64, error) {
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, scanErr(line, "%s: %v", key, err)
	}
	return v, nil
}

func (s *Scenario) setHeader(key, val string, line int) error {
	switch key {
	case "duration":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d <= 0 {
			return scanErr(line, "duration must be positive, got %v", d)
		}
		s.Duration = d
	case "warmup", "ramp":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "%s must not be negative, got %v", key, d)
		}
		s.Warmup = d
	case "concurrency":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "concurrency must be positive, got %d", v)
		}
		s.Concurrency = v
	case "rate":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return scanErr(line, "rate: %v", err)
		}
		if v <= 0 {
			return scanErr(line, "rate must be positive, got %g", v)
		}
		s.Rate = v
	case "burst":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "burst must be positive, got %d", v)
		}
		s.Burst = v
	case "seed":
		v, err := parseInt64(key, val, line)
		if err != nil {
			return err
		}
		s.Seed = v
	default:
		return scanErr(line, "unknown header key %q", key)
	}
	return nil
}

func (c *ServerConfig) set(key, val string, line int) error {
	switch key {
	case "registry_size":
		v, err := parseInt64(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "registry_size must be positive, got %d", v)
		}
		c.RegistrySize = v
	case "cache_size":
		v, err := parseInt64(key, val, line)
		if err != nil {
			return err
		}
		if v < 0 {
			return scanErr(line, "cache_size must not be negative, got %d", v)
		}
		c.CacheSize = v
	case "dataset_ttl":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "dataset_ttl must not be negative, got %v", d)
		}
		c.DatasetTTL = d
	case "data_dir":
		c.DataDir = val
	case "wal_compact_bytes":
		v, err := parseInt64(key, val, line)
		if err != nil {
			return err
		}
		c.WALCompactBytes = v
	case "max_inflight":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v < 0 {
			return scanErr(line, "max_inflight must not be negative, got %d", v)
		}
		c.MaxInFlight = v
	case "timeout":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "timeout must not be negative, got %v", d)
		}
		c.Timeout = d
	case "workers":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		c.Workers = v
	default:
		return scanErr(line, "unknown [server] key %q", key)
	}
	return nil
}

func (c *ClusterConfig) set(key, val string, line int) error {
	switch key {
	case "nodes":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v < 2 || v > 16 {
			return scanErr(line, "nodes must be between 2 and 16, got %d", v)
		}
		c.Nodes = v
	case "heartbeat":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "heartbeat must not be negative, got %v", d)
		}
		c.Heartbeat = d
	case "anti_entropy":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "anti_entropy must not be negative, got %v", d)
		}
		c.AntiEntropy = d
	case "ship_queue_bytes":
		v, err := parseInt64(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "ship_queue_bytes must be positive, got %d", v)
		}
		c.ShipQueueBytes = v
	case "catchup_wait":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "catchup_wait must not be negative, got %v", d)
		}
		c.CatchupWait = d
	default:
		return scanErr(line, "unknown [cluster] key %q", key)
	}
	return nil
}

func (c *ChaosSpec) set(key, val string, line int) error {
	switch key {
	case "start":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d < 0 {
			return scanErr(line, "start must not be negative, got %v", d)
		}
		c.Start = d
	case "duration":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d <= 0 {
			return scanErr(line, "duration must be positive, got %v", d)
		}
		c.Duration = d
	case "target":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v < 0 {
			return scanErr(line, "target must not be negative, got %d", v)
		}
		c.Target = v
	case "mode":
		switch val {
		case ChaosPartition, ChaosBlackhole, ChaosLatency, ChaosError, ChaosFlap:
			c.Mode = val
		default:
			return scanErr(line, "unknown chaos mode %q (want partition|blackhole|latency|error|flap)", val)
		}
	case "latency":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d <= 0 {
			return scanErr(line, "latency must be positive, got %v", d)
		}
		c.Latency = d
	case "error_rate":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return scanErr(line, "error_rate: %v", err)
		}
		if v <= 0 || v > 1 {
			return scanErr(line, "error_rate must be in (0, 1], got %g", v)
		}
		c.ErrorRate = v
	case "flap_period":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d <= 0 {
			return scanErr(line, "flap_period must be positive, got %v", d)
		}
		c.FlapPeriod = d
	case "asymmetric":
		switch val {
		case "true", "1", "yes":
			c.Asymmetric = true
		case "false", "0", "no":
			c.Asymmetric = false
		default:
			return scanErr(line, "asymmetric must be a boolean, got %q", val)
		}
	case "converge_within":
		d, err := parseDur(key, val, line)
		if err != nil {
			return err
		}
		if d <= 0 {
			return scanErr(line, "converge_within must be positive, got %v", d)
		}
		c.ConvergeWithin = d
	default:
		return scanErr(line, "unknown [chaos] key %q", key)
	}
	return nil
}

func (d *DatasetSpec) set(key, val string, line int) error {
	switch key {
	case "rows":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "rows must be positive, got %d", v)
		}
		d.Rows = v
	case "cols":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v < 3 {
			return scanErr(line, "cols must be at least 3 (category, time, metric), got %d", v)
		}
		d.Cols = v
	case "seed":
		v, err := parseInt64(key, val, line)
		if err != nil {
			return err
		}
		d.Seed = v
	case "append_rows":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "append_rows must be positive, got %d", v)
		}
		d.AppendRows = v
	default:
		return scanErr(line, "unknown [dataset] key %q", key)
	}
	return nil
}

func (o *OpSpec) set(key, val string, line int) error {
	switch key {
	case "weight":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return scanErr(line, "weight: %v", err)
		}
		if v <= 0 {
			return scanErr(line, "weight must be positive, got %g", v)
		}
		o.Weight = v
	case "dataset":
		if !o.Kind.needsDataset() {
			return scanErr(line, "op %s does not take a dataset (register creates its own, drop consumes registered ones)", o.Kind)
		}
		o.Dataset = val
	case "k":
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "k must be positive, got %d", v)
		}
		o.K = v
	case "q":
		o.Q = val
	case "rows":
		if o.Kind != OpRegister {
			return scanErr(line, "rows only applies to op register")
		}
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v <= 0 {
			return scanErr(line, "rows must be positive, got %d", v)
		}
		o.Rows = v
	case "cols":
		if o.Kind != OpRegister {
			return scanErr(line, "cols only applies to op register")
		}
		v, err := parseInt(key, val, line)
		if err != nil {
			return err
		}
		if v < 3 {
			return scanErr(line, "cols must be at least 3, got %d", v)
		}
		o.Cols = v
	default:
		return scanErr(line, "unknown [op] key %q", key)
	}
	return nil
}

// validate applies cross-section rules after the whole script parsed.
func (s *Scenario) validate() error {
	if s.Burst == 0 {
		s.Burst = s.Concurrency
	}
	if s.Warmup >= s.Duration {
		return fmt.Errorf("scenario: warmup %v must be shorter than duration %v", s.Warmup, s.Duration)
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("scenario: no [op] sections declared")
	}
	if s.Cluster.Line != 0 && s.Cluster.Nodes == 0 {
		return scanErr(s.Cluster.Line, "[cluster] declares no nodes key")
	}
	if s.Chaos != nil {
		if s.Cluster.Nodes < 2 {
			return scanErr(s.Chaos.Line, "[chaos] needs a [cluster] section with nodes >= 2")
		}
		if s.Chaos.Duration <= 0 {
			return scanErr(s.Chaos.Line, "[chaos] declares no duration key")
		}
		if s.Chaos.Target >= s.Cluster.Nodes {
			return scanErr(s.Chaos.Line, "[chaos] target %d out of range for %d nodes", s.Chaos.Target, s.Cluster.Nodes)
		}
		if s.Chaos.Start+s.Chaos.Duration > s.Duration {
			return scanErr(s.Chaos.Line, "[chaos] window (start %v + duration %v) must close before the run ends (%v) so convergence is measured post-heal",
				s.Chaos.Start, s.Chaos.Duration, s.Duration)
		}
	}
	for i := range s.Datasets {
		if s.Datasets[i].Seed < 0 {
			s.Datasets[i].Seed = s.Seed
		}
	}
	needed := map[string]bool{}
	for i := range s.Ops {
		op := &s.Ops[i]
		if op.Weight < 0 {
			return scanErr(op.Line, "op %s declares no weight", op.Kind)
		}
		if op.Kind.needsDataset() {
			if op.Dataset == "" {
				return scanErr(op.Line, "op %s needs a dataset key", op.Kind)
			}
			if s.Dataset(op.Dataset) == nil {
				return scanErr(op.Line, "op %s references undeclared dataset %q", op.Kind, op.Dataset)
			}
			needed[op.Dataset] = true
		}
	}
	if s.WeightSum() <= 0 {
		return fmt.Errorf("scenario: op weights sum to zero")
	}
	for i := range s.Datasets {
		if !needed[s.Datasets[i].Name] {
			return scanErr(s.Datasets[i].Line, "dataset %q is declared but no op targets it", s.Datasets[i].Name)
		}
	}
	return nil
}
