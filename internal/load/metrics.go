package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// metricsSnapshot is one parse of a Prometheus text page: every
// non-histogram-bucket sample keyed by its full series string
// (`name{labels}`), plus convenience extractions the harness uses.
type metricsSnapshot struct {
	samples map[string]float64
}

// parseMetricsText reads the Prometheus text exposition format
// (comment lines skipped, `name{labels} value` samples collected).
// It only needs the counters and gauges the reconciler and soak
// monitor look at, so unparseable sample values are skipped rather
// than fatal.
func parseMetricsText(r io.Reader) (*metricsSnapshot, error) {
	snap := &metricsSnapshot{samples: map[string]float64{}}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything past the last space; series strings
		// never contain spaces outside quoted label values, and label
		// values here (routes, dataset names) never contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue
		}
		snap.samples[strings.TrimSpace(line[:i])] = v
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("load: parsing metrics: %w", err)
	}
	return snap, nil
}

// value returns the sample for an exact series string (0 if absent).
func (s *metricsSnapshot) value(series string) float64 {
	if s == nil {
		return 0
	}
	return s.samples[series]
}

// gauge returns an unlabeled gauge by bare name (0 if absent).
func (s *metricsSnapshot) gauge(name string) float64 { return s.value(name) }

// maxSeries returns the largest sample among series of the metric
// (any label set), 0 when none are present. Used on single-member
// pages — a merged snapshot sums same-labeled series across members,
// which would overstate a per-peer maximum.
func (s *metricsSnapshot) maxSeries(name string) float64 {
	var max float64
	for series, v := range s.samples {
		if (series == name || strings.HasPrefix(series, name+"{")) && v > max {
			max = v
		}
	}
	return max
}

// merge adds another page's samples into this snapshot (summing
// series), so a cluster's N /metrics pages reconcile as one ledger.
func (s *metricsSnapshot) merge(o *metricsSnapshot) {
	for series, v := range o.samples {
		s.samples[series] += v
	}
}

// routeCounter extracts a route-labeled counter (`name{route="..."}`)
// into a route → count map.
func (s *metricsSnapshot) routeCounter(name string) map[string]float64 {
	out := map[string]float64{}
	if s == nil {
		return out
	}
	prefix := name + `{route="`
	for series, v := range s.samples {
		rest, ok := strings.CutPrefix(series, prefix)
		if !ok {
			continue
		}
		route, ok := strings.CutSuffix(rest, `"}`)
		if !ok {
			continue
		}
		out[route] = v
	}
	return out
}

// clientRequestsByRoute is the per-route count of requests that
// originated OUTSIDE the cluster: total requests minus the ones a peer
// relayed here (a forwarded write or a proxied read is counted once on
// the node the client hit and once — flagged — on the node that served
// it, so the difference is exactly the client-sent count, whichever
// replica answered).
func (s *metricsSnapshot) clientRequestsByRoute() map[string]float64 {
	out := s.routeCounter("deepeye_http_requests_total")
	for route, fwd := range s.routeCounter("deepeye_http_forwarded_requests_total") {
		out[route] -= fwd
	}
	return out
}

// RouteCount is one row of the client-vs-server reconciliation.
type RouteCount struct {
	Route  string `json:"route"`
	Client uint64 `json:"client"`
	Server uint64 `json:"server"`
}

// reconcile diffs the server's per-route request counters between two
// scrapes against the client's own counts. Every request the harness
// sent between the scrapes (including its own /metrics scrapes) must
// appear in the server's delta — a mismatch means lost or phantom
// requests. The snapshots may be merged cluster-wide pages: requests a
// peer relayed (counted on two nodes, flagged as forwarded on the
// second) net out to exactly one client request, and the /cluster/*
// peer protocol is server-to-server traffic by definition, so it is
// excluded from the phantom check.
func reconcile(before, after *metricsSnapshot, client map[string]uint64) (rows []RouteCount, ok bool) {
	ok = true
	beforeRoutes := before.clientRequestsByRoute()
	afterRoutes := after.clientRequestsByRoute()
	seen := map[string]bool{}
	for route, clientN := range client {
		serverN := uint64(afterRoutes[route] - beforeRoutes[route])
		rows = append(rows, RouteCount{Route: route, Client: clientN, Server: serverN})
		if serverN != clientN {
			ok = false
		}
		seen[route] = true
	}
	// Routes the server saw grow but the client never hit: phantom
	// traffic (another client?) — flagged, not fatal, since an external
	// server may legitimately serve others.
	for route := range afterRoutes {
		if seen[route] || strings.HasPrefix(route, "/cluster/") {
			continue
		}
		if d := afterRoutes[route] - beforeRoutes[route]; d > 0 {
			rows = append(rows, RouteCount{Route: route, Client: 0, Server: uint64(d)})
		}
	}
	sortRouteCounts(rows)
	return rows, ok
}

func sortRouteCounts(rows []RouteCount) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Route < rows[j-1].Route; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
