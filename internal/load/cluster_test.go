package load

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	deepeye "github.com/deepeye/deepeye"
	"github.com/deepeye/deepeye/internal/cluster"
	"github.com/deepeye/deepeye/internal/obs"
	"github.com/deepeye/deepeye/internal/server"
)

// startTestCluster boots n full replicated members (each with its own
// System, WAL directory, metrics registry, and cluster.Node) on
// loopback listeners and returns their base URLs. Listeners are bound
// before any member is built so every node sees the complete ring.
func startTestCluster(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		sys, err := deepeye.Open(registryOptions(t.TempDir()))
		if err != nil {
			t.Fatalf("deepeye.Open node %d: %v", i, err)
		}
		obsReg := obs.NewRegistry()
		node, err := cluster.New(cluster.Config{
			Self:     urls[i],
			Peers:    urls,
			Registry: sys.RegistryHandle(),
			Obs:      obsReg,
		})
		if err != nil {
			t.Fatalf("cluster.New node %d: %v", i, err)
		}
		h := server.New(sys, server.Options{
			MaxBodyBytes: 16 << 20,
			Timeout:      30 * time.Second,
			MaxInFlight:  64,
			Registry:     obsReg,
			Cluster:      node,
		})
		srv := &http.Server{Handler: h}
		go srv.Serve(lns[i])
		t.Cleanup(func() {
			srv.Close()
			node.Close()
			sys.Close()
		})
	}
	return urls
}

// TestRunEndToEndCluster drives the full harness round-robin across a
// real three-node replicated cluster: misdirected writes forward to
// per-dataset leaders, reads land on followers carrying min_epoch
// read-your-writes tokens, every append fingerprint is verified
// against the client mirror, and the cluster-wide request ledger
// (Σ requests − Σ forwarded over all three /metrics pages) must equal
// the client's own per-route counts exactly.
func TestRunEndToEndCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("3s load run")
	}
	urls := startTestCluster(t, 3)
	sc, err := ParseScenarioString(e2eScenario)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	sum, err := Run(context.Background(), sc, Config{
		BaseURLs:        urls,
		DrainTimeout:    5 * time.Second,
		MonitorInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.TotalOK == 0 {
		t.Fatalf("no successful ops:\n%s", summaryText(sum))
	}
	if sum.TotalError != 0 || len(sum.HardErrors) != 0 {
		t.Errorf("hard errors:\n%s", summaryText(sum))
	}
	if sum.FingerprintChecks == 0 {
		t.Errorf("no fingerprint checks ran")
	}
	if sum.FingerprintMismatches != 0 || sum.EpochRegressions != 0 {
		t.Errorf("verification failures:\n%s", summaryText(sum))
	}
	if !sum.ReconcileOK {
		t.Errorf("cluster-wide request counts do not reconcile:\n%s", summaryText(sum))
	}
	if want := strings.Join(urls, ","); sum.Target != want {
		t.Errorf("summary target = %q, want %q", sum.Target, want)
	}
	// The peer protocol must stay out of the client's ledger.
	for _, row := range sum.Reconciliation {
		if strings.HasPrefix(row.Route, "/cluster/") {
			t.Errorf("peer route %s leaked into the reconciliation table", row.Route)
		}
	}
}
