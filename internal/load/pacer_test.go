package load

import (
	"context"
	"testing"
	"time"
)

// fakeClock drives a Pacer without real sleeping: Sleep advances the
// clock instantly and records the requested durations.
type fakeClock struct {
	now    time.Time
	slept  []time.Duration
	cancel bool
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if c.cancel {
		return context.Canceled
	}
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	return nil
}

func pacerWith(c *fakeClock, rate float64, ramp time.Duration, burst int) *Pacer {
	return NewPacer(rate, ramp, burst).WithClock(c.Now, c.Sleep)
}

func TestPacerSteadyRate(t *testing.T) {
	c := newFakeClock()
	p := pacerWith(c, 10, 0, 1) // 10/s → one token per 100ms
	ctx := context.Background()

	// First token is immediate; every subsequent token is 100ms apart.
	for i := 0; i < 5; i++ {
		if err := p.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	want := []time.Duration{100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond}
	if len(c.slept) != len(want) {
		t.Fatalf("slept %v, want %d sleeps", c.slept, len(want))
	}
	for i, d := range want {
		if c.slept[i] != d {
			t.Errorf("sleep %d = %v, want %v", i, c.slept[i], d)
		}
	}
}

func TestPacerBurstCapsBacklog(t *testing.T) {
	c := newFakeClock()
	p := pacerWith(c, 10, 0, 3)
	ctx := context.Background()

	if err := p.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Stall for 10 seconds: 100 tokens matured, but only burst=3 may
	// have accumulated — those three plus the token maturing exactly
	// now fire immediately, then the pacer sleeps again.
	c.now = c.now.Add(10 * time.Second)
	sleptBefore := len(c.slept)
	for i := 0; i < 4; i++ {
		if err := p.Wait(ctx); err != nil {
			t.Fatalf("Wait burst %d: %v", i, err)
		}
		if len(c.slept) != sleptBefore {
			t.Fatalf("burst wait %d slept %v", i, c.slept[sleptBefore:])
		}
	}
	if err := p.Wait(ctx); err != nil {
		t.Fatalf("Wait after burst: %v", err)
	}
	if len(c.slept) == sleptBefore {
		t.Fatalf("wait after burst drained did not sleep")
	}
}

func TestPacerRampSlowsEarlyTokens(t *testing.T) {
	c := newFakeClock()
	// rate 10/s with a 1s ramp: the effective rate starts at 1/s
	// (rate/10), so the first interval is near 1s and intervals shrink
	// toward 100ms as the ramp completes.
	p := pacerWith(c, 10, time.Second, 1)
	ctx := context.Background()

	for i := 0; i < 12; i++ {
		if err := p.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	if len(c.slept) < 3 {
		t.Fatalf("slept %v", c.slept)
	}
	first, second := c.slept[0], c.slept[1]
	if first <= second {
		t.Errorf("ramp did not slow the first interval: %v then %v", first, second)
	}
	if first < 500*time.Millisecond || first > time.Second {
		t.Errorf("first ramped interval = %v, want near 1s", first)
	}
	last := c.slept[len(c.slept)-1]
	if last != 100*time.Millisecond {
		t.Errorf("post-ramp interval = %v, want 100ms", last)
	}
}

func TestPacerDeterministicSchedule(t *testing.T) {
	run := func() []time.Duration {
		c := newFakeClock()
		p := pacerWith(c, 33, 500*time.Millisecond, 4)
		for i := 0; i < 50; i++ {
			if err := p.Wait(context.Background()); err != nil {
				t.Fatalf("Wait: %v", err)
			}
		}
		return c.slept
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedules diverge in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPacerContextCancel(t *testing.T) {
	c := newFakeClock()
	c.cancel = true
	p := pacerWith(c, 1, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Wait(ctx); err == nil {
		// First token is immediate but must still report the dead context.
		t.Fatalf("Wait on cancelled context returned nil")
	}
}
