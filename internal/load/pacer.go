package load

import (
	"context"
	"sync"
	"time"
)

// Pacer is a deterministic token-bucket: tokens mature at the target
// rate (ramping linearly over the warmup window), accumulate while
// workers are busy up to the burst capacity, and Wait blocks the
// caller until its token matures. All workers share one Pacer, so the
// aggregate request rate tracks the scenario's rate key regardless of
// worker count.
//
// The clock is injectable (WithClock, mirroring registry.WithClock)
// so tests can verify the schedule without sleeping.
type Pacer struct {
	rate  float64       // target tokens/sec after ramp
	ramp  time.Duration // linear ramp-up window (0 = full rate at once)
	burst int           // max tokens accumulated while idle

	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	mu    sync.Mutex
	start time.Time // first Wait; ramp is measured from here
	next  time.Time // when the next token matures
}

// NewPacer builds a pacer at rate tokens/sec with the given ramp
// window and burst capacity (minimum 1).
func NewPacer(rate float64, ramp time.Duration, burst int) *Pacer {
	if burst < 1 {
		burst = 1
	}
	return &Pacer{
		rate:  rate,
		ramp:  ramp,
		burst: burst,
		now:   time.Now,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
}

// WithClock replaces the pacer's clock and sleeper and returns the
// pacer for chaining — the test hook that makes pacing deterministic.
func (p *Pacer) WithClock(now func() time.Time, sleep func(ctx context.Context, d time.Duration) error) *Pacer {
	p.now = now
	p.sleep = sleep
	return p
}

// interval returns the gap between tokens at the given elapsed time.
// During the ramp the effective rate climbs linearly from rate/10 to
// rate (the floor avoids an unbounded first interval).
func (p *Pacer) interval(elapsed time.Duration) time.Duration {
	r := p.rate
	if p.ramp > 0 && elapsed < p.ramp {
		f := float64(elapsed) / float64(p.ramp)
		if f < 0 {
			f = 0
		}
		r = p.rate * (0.1 + 0.9*f)
	}
	return time.Duration(float64(time.Second) / r)
}

// Wait blocks until the caller's token matures or ctx is done. The
// schedule is computed under a mutex, so concurrent waiters receive
// strictly ordered, rate-spaced slots.
func (p *Pacer) Wait(ctx context.Context) error {
	p.mu.Lock()
	now := p.now()
	if p.start.IsZero() {
		p.start = now
		p.next = now
	}
	iv := p.interval(now.Sub(p.start))
	// Tokens accumulated while no one was waiting are capped at burst:
	// a stall never earns an unbounded catch-up spike.
	if backlog := time.Duration(p.burst) * iv; now.Sub(p.next) > backlog {
		p.next = now.Add(-backlog)
	}
	schedule := p.next
	p.next = schedule.Add(p.interval(schedule.Sub(p.start)))
	p.mu.Unlock()

	if d := schedule.Sub(now); d > 0 {
		return p.sleep(ctx, d)
	}
	return ctx.Err()
}
