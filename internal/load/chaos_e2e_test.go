package load

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	deepeye "github.com/deepeye/deepeye"
	"github.com/deepeye/deepeye/internal/cluster"
	"github.com/deepeye/deepeye/internal/obs"
	"github.com/deepeye/deepeye/internal/server"
)

const chaosE2EScenario = `
duration = 6s
warmup = 500ms
concurrency = 4
rate = 30
seed = 7

[cluster]
nodes = 3
heartbeat = 100ms
anti_entropy = 500ms
ship_queue_bytes = 131072
catchup_wait = 500ms

[chaos]
mode = partition
target = 1
start = 1s
duration = 2s
converge_within = 8s

[dataset sales]
rows = 120
cols = 4
append_rows = 6

[op topk]
weight = 2
dataset = sales

[op query]
weight = 1
dataset = sales

[op append]
weight = 3
dataset = sales
`

// startChaosCluster boots the scenario's replicated members with
// every peer client wrapped in the chaos controller's fault-injecting
// transport — the same wiring cmd/deepeye-load's -inprocess mode uses.
func startChaosCluster(t *testing.T, sc *Scenario) ([]string, *ChaosController) {
	t.Helper()
	n := sc.Cluster.Nodes
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	chaos, err := NewChaosController(*sc.Chaos, urls[sc.Chaos.Target])
	if err != nil {
		t.Fatalf("NewChaosController: %v", err)
	}
	for i := range lns {
		sys, err := deepeye.Open(registryOptions(t.TempDir()))
		if err != nil {
			t.Fatalf("deepeye.Open node %d: %v", i, err)
		}
		obsReg := obs.NewRegistry()
		node, err := cluster.New(cluster.Config{
			Self:                urls[i],
			Peers:               urls,
			Registry:            sys.RegistryHandle(),
			Obs:                 obsReg,
			Client:              &http.Client{Transport: chaos.Transport(i, nil)},
			HeartbeatInterval:   sc.Cluster.Heartbeat,
			AntiEntropyInterval: sc.Cluster.AntiEntropy,
			ShipQueueBytes:      sc.Cluster.ShipQueueBytes,
			CatchupWait:         sc.Cluster.CatchupWait,
		})
		if err != nil {
			t.Fatalf("cluster.New node %d: %v", i, err)
		}
		h := server.New(sys, server.Options{
			MaxBodyBytes: 16 << 20,
			Timeout:      30 * time.Second,
			MaxInFlight:  64,
			Registry:     obsReg,
			Cluster:      node,
		})
		srv := &http.Server{Handler: h}
		go srv.Serve(lns[i])
		t.Cleanup(func() {
			srv.Close()
			node.Close()
			sys.Close()
		})
	}
	return urls, chaos
}

// TestRunEndToEndChaosPartition is the chaos differential: a three-
// node cluster under mixed load loses one follower to a scripted 2s
// partition mid-run. During the window, traffic crossing the cut
// sheds fast (peer_down) rather than erroring, shipper queues stay
// under the scenario's 128 KiB cap, and after the heal every member
// must reconverge to bit-identical per-dataset epochs and
// fingerprints — while the client-side fingerprint oracle and the
// cluster-wide request reconciliation stay exact.
func TestRunEndToEndChaosPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("6s chaos run")
	}
	sc, err := ParseScenarioString(chaosE2EScenario)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	urls, chaos := startChaosCluster(t, sc)
	sum, err := Run(context.Background(), sc, Config{
		BaseURLs:        urls,
		DrainTimeout:    5 * time.Second,
		MonitorInterval: 200 * time.Millisecond,
		Chaos:           chaos,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Chaos == nil {
		t.Fatalf("no chaos summary:\n%s", summaryText(sum))
	}
	if !sum.Chaos.Reconverged {
		t.Fatalf("cluster did not reconverge after the partition:\n%s", summaryText(sum))
	}
	if sum.Chaos.Injected == 0 {
		t.Error("partition window injected no faults — chaos never bit")
	}
	if sum.Chaos.QueueCapBytes != 131072 {
		t.Errorf("queue cap = %d, want the scenario's 131072", sum.Chaos.QueueCapBytes)
	}
	if sum.Chaos.MaxQueueBytes > sum.Chaos.QueueCapBytes {
		t.Errorf("shipper queue reached %d bytes, above the %d cap",
			sum.Chaos.MaxQueueBytes, sum.Chaos.QueueCapBytes)
	}
	if sum.TotalOK == 0 {
		t.Fatalf("no successful ops:\n%s", summaryText(sum))
	}
	if sum.TotalError != 0 || len(sum.HardErrors) != 0 {
		t.Errorf("hard errors during chaos (cut traffic must shed, not error):\n%s", summaryText(sum))
	}
	if sum.FingerprintMismatches != 0 || sum.EpochRegressions != 0 {
		t.Errorf("verification failures:\n%s", summaryText(sum))
	}
	if !sum.ReconcileOK {
		t.Errorf("request counts do not reconcile:\n%s", summaryText(sum))
	}
}
