package load

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

const metricsPage = `# HELP deepeye_http_requests_total requests by route
# TYPE deepeye_http_requests_total counter
deepeye_http_requests_total{route="/topk"} 10
deepeye_http_requests_total{route="/datasets"} 3
deepeye_http_requests_total{route="/metrics"} 2
deepeye_go_goroutines 42
deepeye_go_heap_alloc_bytes 1048576
deepeye_http_request_duration_seconds_bucket{le="0.1"} 7
not a sample line
deepeye_bad_value{x="y"} banana
`

func TestParseMetricsText(t *testing.T) {
	snap, err := parseMetricsText(strings.NewReader(metricsPage))
	if err != nil {
		t.Fatalf("parseMetricsText: %v", err)
	}
	if got := snap.gauge("deepeye_go_goroutines"); got != 42 {
		t.Errorf("goroutines = %g", got)
	}
	if got := snap.gauge("deepeye_go_heap_alloc_bytes"); got != 1<<20 {
		t.Errorf("heap = %g", got)
	}
	routes := snap.routeCounter("deepeye_http_requests_total")
	want := map[string]float64{"/topk": 10, "/datasets": 3, "/metrics": 2}
	if len(routes) != len(want) {
		t.Fatalf("routes = %v", routes)
	}
	for r, v := range want {
		if routes[r] != v {
			t.Errorf("route %s = %g, want %g", r, routes[r], v)
		}
	}
	if got := snap.gauge("deepeye_missing"); got != 0 {
		t.Errorf("missing gauge = %g, want 0", got)
	}
}

func snapFor(t *testing.T, routes map[string]float64) *metricsSnapshot {
	t.Helper()
	var b strings.Builder
	for r, v := range routes {
		b.WriteString(`deepeye_http_requests_total{route="` + r + `"} `)
		b.WriteString(strconv.FormatFloat(v, 'f', -1, 64))
		b.WriteByte('\n')
	}
	snap, err := parseMetricsText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parseMetricsText: %v", err)
	}
	return snap
}

func TestReconcile(t *testing.T) {
	before := snapFor(t, map[string]float64{"/topk": 5, "/metrics": 1})
	after := snapFor(t, map[string]float64{"/topk": 15, "/metrics": 4, "/healthz": 2})

	rows, ok := reconcile(before, after, map[string]uint64{"/topk": 10, "/metrics": 3})
	if !ok {
		t.Fatalf("reconcile reported mismatch: %+v", rows)
	}
	// /healthz grew without client traffic: reported but not fatal.
	var sawPhantom bool
	for _, r := range rows {
		if r.Route == "/healthz" && r.Server == 2 && r.Client == 0 {
			sawPhantom = true
		}
	}
	if !sawPhantom {
		t.Errorf("phantom route not reported: %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Route < rows[i-1].Route {
			t.Errorf("rows not sorted: %+v", rows)
		}
	}

	_, ok = reconcile(before, after, map[string]uint64{"/topk": 9, "/metrics": 3})
	if ok {
		t.Fatalf("reconcile missed a lost request")
	}
}

func TestReporterAndSummary(t *testing.T) {
	sc, err := ParseScenarioString("duration = 10s\nwarmup = 2s\n[dataset d]\n[op topk]\nweight=1\ndataset=d\n[op append]\nweight=1\ndataset=d\n")
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	rep := NewReporter([]OpKind{OpTopK, OpAppend})
	rep.Start(time.Now(), sc.Warmup)

	// Warmup-phase OKs count toward totals but not latency stats.
	rep.Record(OpTopK, 5*time.Millisecond, outOK)
	rep.EnableStats()
	for i := 0; i < 8; i++ {
		rep.Record(OpTopK, 10*time.Millisecond, outOK)
	}
	rep.Record(OpTopK, 20*time.Millisecond, outShed)
	rep.Record(OpAppend, 15*time.Millisecond, outOK)
	rep.Record(OpAppend, 0, outError)
	rep.Record(OpAppend, 0, outSkipped)
	rep.Error("append d: boom %d", 7)

	sum := rep.summarize(sc)
	if len(sum.Ops) != 2 {
		t.Fatalf("ops = %+v", sum.Ops)
	}
	get := func(name string) OpSummary {
		for _, op := range sum.Ops {
			if op.Op == name {
				return op
			}
		}
		t.Fatalf("op %s missing", name)
		return OpSummary{}
	}
	topk := get("topk")
	if topk.OK != 9 || topk.WarmupOK != 1 || topk.Shed != 1 {
		t.Errorf("topk = %+v", topk)
	}
	// Measured window is duration-warmup = 8s; 8 measured OKs → 1/s.
	if topk.Throughput != 1.0 {
		t.Errorf("topk throughput = %g", topk.Throughput)
	}
	ap := get("append")
	if ap.OK != 1 || ap.Errors != 1 || ap.Skipped != 1 {
		t.Errorf("append = %+v", ap)
	}
	if sum.TotalOK != 10 || sum.TotalError != 1 || sum.TotalShed != 1 {
		t.Errorf("totals = %d/%d/%d", sum.TotalOK, sum.TotalError, sum.TotalShed)
	}
	if len(sum.HardErrors) != 1 || !strings.Contains(sum.HardErrors[0], "boom 7") {
		t.Errorf("hard errors = %v", sum.HardErrors)
	}

	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("summary JSON does not round-trip: %v", err)
	}
	if back.TotalOK != sum.TotalOK {
		t.Errorf("round-trip TotalOK = %d", back.TotalOK)
	}
	buf.Reset()
	sum.WriteText(&buf)
	for _, want := range []string{"topk", "append", "boom 7", "fingerprint"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSummaryCheckGates(t *testing.T) {
	base := func() *Summary {
		return &Summary{
			Ops:         []OpSummary{{Op: "topk", OK: 10, P99Ms: 50}},
			TotalOK:     10,
			ReconcileOK: true,
			Monitor: &MonitorSummary{
				GoroutineBaseline: 20, GoroutineFinal: 22,
				SysBaselineBytes: 1 << 20, SysFinalBytes: 1 << 20,
			},
		}
	}
	if err := base().Check(Gates{FailOnError: true, P99Ceiling: time.Second, MaxGoroutineGrowth: 10, MaxSysGrowthBytes: 1 << 20, RequireReconcile: true}); err != nil {
		t.Fatalf("clean summary failed gates: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Summary)
		gates  Gates
		want   string
	}{
		{"hard errors", func(s *Summary) { s.TotalError = 3 }, Gates{FailOnError: true}, "3 hard errors"},
		{"fingerprint", func(s *Summary) { s.FingerprintMismatches = 1 }, Gates{FailOnError: true}, "fingerprint mismatches"},
		{"epoch", func(s *Summary) { s.EpochRegressions = 2 }, Gates{FailOnError: true}, "epoch regressions"},
		{"p99", func(s *Summary) { s.Ops[0].P99Ms = 5000 }, Gates{P99Ceiling: time.Second}, "exceeds ceiling"},
		{"goroutines", func(s *Summary) { s.Monitor.GoroutineFinal = 99 }, Gates{MaxGoroutineGrowth: 10}, "goroutines grew"},
		{"memory", func(s *Summary) { s.Monitor.SysFinalBytes = 1 << 30 }, Gates{MaxSysGrowthBytes: 1 << 20}, "memory grew"},
		{"reconcile", func(s *Summary) { s.ReconcileOK = false }, Gates{RequireReconcile: true}, "do not reconcile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			err := s.Check(tc.gates)
			if err == nil {
				t.Fatalf("gate did not fire")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
			// The violated summary passes when that gate is off.
			if err := s.Check(Gates{}); err != nil {
				t.Fatalf("disabled gates still failed: %v", err)
			}
		})
	}
}
