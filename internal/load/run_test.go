package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	deepeye "github.com/deepeye/deepeye"
	"github.com/deepeye/deepeye/internal/server"
)

// startTestServer boots a full System + HTTP handler; wrap (optional)
// lets a test interpose middleware (e.g. to inject a leak).
func startTestServer(t *testing.T, opts deepeye.Options, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	sys, err := deepeye.Open(opts)
	if err != nil {
		t.Fatalf("deepeye.Open: %v", err)
	}
	var handler http.Handler = server.New(sys, server.Options{
		MaxBodyBytes: 16 << 20,
		Timeout:      30 * time.Second,
		MaxInFlight:  64,
	})
	if wrap != nil {
		handler = wrap(handler)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(func() {
		ts.Close()
		sys.Close()
	})
	return ts
}

func registryOptions(dir string) deepeye.Options {
	return deepeye.Options{
		IncludeOneColumn: true,
		CacheSize:        8 << 20,
		RegistrySize:     64 << 20,
		DataDir:          dir,
	}
}

const e2eScenario = `
duration = 3s
warmup = 500ms
concurrency = 6
rate = 40
seed = 5

[dataset d]
rows = 120
cols = 4
append_rows = 6

[op append]
weight = 4
dataset = d

[op topk]
weight = 2
dataset = d
k = 3

[op query]
weight = 1
dataset = d

[op search]
weight = 1
dataset = d
q = region metric1

[op nlq]
weight = 1
dataset = d
k = 3

[op register]
weight = 1
rows = 30
cols = 3

[op drop]
weight = 1
`

// TestRunEndToEnd drives the full harness against a real durable
// server: mixed op classes, fingerprint verification on every append,
// and exact client/server request-count reconciliation.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("3s load run")
	}
	ts := startTestServer(t, registryOptions(t.TempDir()), nil)
	sc, err := ParseScenarioString(e2eScenario)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	sum, err := Run(context.Background(), sc, Config{
		BaseURL:         ts.URL,
		DrainTimeout:    3 * time.Second,
		MonitorInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.TotalOK == 0 {
		t.Fatalf("no successful ops:\n%s", summaryText(sum))
	}
	if sum.TotalError != 0 || len(sum.HardErrors) != 0 {
		t.Errorf("hard errors:\n%s", summaryText(sum))
	}
	if sum.FingerprintChecks == 0 {
		t.Errorf("no fingerprint checks ran")
	}
	if sum.FingerprintMismatches != 0 || sum.EpochRegressions != 0 {
		t.Errorf("verification failures:\n%s", summaryText(sum))
	}
	if !sum.ReconcileOK {
		t.Errorf("client/server request counts do not reconcile:\n%s", summaryText(sum))
	}
	if len(sum.Reconciliation) == 0 {
		t.Errorf("no reconciliation rows")
	}
	if sum.Monitor == nil || sum.Monitor.Samples == 0 {
		t.Errorf("monitor collected no samples")
	}
	if !sum.Monitor.DrainedToBaseline {
		t.Errorf("goroutines did not drain: %+v", sum.Monitor)
	}
	// A healthy run passes the full gate set.
	if err := sum.Check(Gates{FailOnError: true, RequireReconcile: true, MaxGoroutineGrowth: 25}); err != nil {
		t.Errorf("gates failed on a clean run: %v", err)
	}
	// Every declared op class must have been attempted.
	seen := map[string]bool{}
	for _, op := range sum.Ops {
		if op.Attempts > 0 {
			seen[op.Op] = true
		}
	}
	for _, want := range []string{"append", "topk", "query", "search", "nlq", "register", "drop"} {
		if !seen[want] {
			t.Errorf("op %s never attempted:\n%s", want, summaryText(sum))
		}
	}
}

// TestRunSoakDetectsInjectedLeak is the soak gate's self-test: a
// middleware leaks one goroutine per append request, and the
// goroutine-growth gate must catch it.
func TestRunSoakDetectsInjectedLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("2s load run")
	}
	release := make(chan struct{})
	defer close(release)
	leak := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/rows") {
				go func() { <-release }() // intentional leak until test cleanup
			}
			next.ServeHTTP(w, r)
		})
	}
	ts := startTestServer(t, registryOptions(t.TempDir()), leak)
	sc, err := ParseScenarioString(`
duration = 2s
warmup = 200ms
concurrency = 4
rate = 60
seed = 3

[dataset d]
rows = 50
cols = 3
append_rows = 2

[op append]
weight = 1
dataset = d
`)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	sum, err := Run(context.Background(), sc, Config{
		BaseURL:         ts.URL,
		Soak:            true,
		DrainTimeout:    500 * time.Millisecond,
		MonitorInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := sum.Monitor
	if m == nil {
		t.Fatalf("no monitor summary")
	}
	if m.GoroutineFinal-m.GoroutineBaseline <= 5 {
		t.Fatalf("leak not visible in monitor: %+v", m)
	}
	if m.DrainedToBaseline {
		t.Errorf("leaked run reported drained: %+v", m)
	}
	err = sum.Check(Gates{MaxGoroutineGrowth: 5})
	if err == nil {
		t.Fatalf("goroutine-growth gate did not fire: %+v", m)
	}
	if !strings.Contains(err.Error(), "goroutines grew") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	// The leak is the harness's finding, not the server's: the appends
	// themselves must all have verified.
	if sum.FingerprintMismatches != 0 || sum.TotalError != 0 {
		t.Errorf("unexpected failures during leak run:\n%s", summaryText(sum))
	}
}

// TestRunShedToleration drives more concurrency than the server
// admits: shed responses (503 capacity) must be tolerated, counted,
// and excluded from hard errors, and reconciliation must still hold
// (the server counts a request before shedding it).
func TestRunShedToleration(t *testing.T) {
	if testing.Short() {
		t.Skip("2s load run")
	}
	sys, err := deepeye.Open(registryOptions(t.TempDir()))
	if err != nil {
		t.Fatalf("deepeye.Open: %v", err)
	}
	// MaxInFlight 1 with 8 workers firing faster than the server can
	// answer even a small TopK: arrivals must overlap, so a large share
	// of requests shed. The rate is set well above measured single-query
	// throughput so the test does not depend on query latency.
	ts := httptest.NewServer(server.New(sys, server.Options{
		MaxBodyBytes: 16 << 20,
		Timeout:      30 * time.Second,
		MaxInFlight:  1,
	}))
	t.Cleanup(func() {
		ts.Close()
		sys.Close()
	})
	sc, err := ParseScenarioString(`
duration = 2s
concurrency = 8
rate = 2000
seed = 11

[dataset d]
rows = 500
cols = 3
append_rows = 2

[op topk]
weight = 2
dataset = d
k = 3

[op append]
weight = 1
dataset = d
`)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	sum, err := Run(context.Background(), sc, Config{
		BaseURL:         ts.URL,
		DrainTimeout:    2 * time.Second,
		MonitorInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.TotalShed == 0 {
		t.Errorf("expected shed responses under MaxInFlight=1:\n%s", summaryText(sum))
	}
	if sum.TotalError != 0 {
		t.Errorf("shed responses surfaced as hard errors:\n%s", summaryText(sum))
	}
	if !sum.ReconcileOK {
		t.Errorf("reconciliation broke under shedding:\n%s", summaryText(sum))
	}
	if err := sum.Check(Gates{FailOnError: true, RequireReconcile: true}); err != nil {
		t.Errorf("gates failed: %v", err)
	}
}

func summaryText(s *Summary) string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}
