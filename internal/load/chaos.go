package load

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// errInjected is the transport error chaos injects for partitioned or
// error-mode requests; it surfaces to callers exactly like a refused
// connection.
var errInjected = errors.New("chaos: injected network fault")

// ChaosController scripts faults on the inter-node links of an
// in-process cluster. Each node's peer HTTP client is wrapped with
// Transport(i, base); while the controller is open, requests on links
// touching the target node are failed, delayed, or blackholed
// according to the spec. Client→server load traffic is never touched —
// chaos models network partitions between members, not client outages.
type ChaosController struct {
	spec    ChaosSpec
	targets map[string]bool // host:port forms of the target node's URL

	mu       sync.Mutex
	open     bool
	openedAt time.Time
	healCh   chan struct{} // closed on heal: releases blackholed requests
	injected int
	rng      *rand.Rand
}

// NewChaosController builds a controller for the spec against the
// target node's base URL (faults apply to links touching it).
func NewChaosController(spec ChaosSpec, targetURL string) (*ChaosController, error) {
	u, err := url.Parse(targetURL)
	if err != nil {
		return nil, fmt.Errorf("chaos: target url: %w", err)
	}
	return &ChaosController{
		spec:    spec,
		targets: map[string]bool{u.Host: true},
		healCh:  make(chan struct{}),
		rng:     rand.New(rand.NewSource(0x5eed)),
	}, nil
}

// Spec returns the scripted fault.
func (c *ChaosController) Spec() ChaosSpec { return c.spec }

// Open starts the fault window.
func (c *ChaosController) Open() {
	c.mu.Lock()
	if !c.open {
		c.open = true
		c.openedAt = time.Now()
		c.healCh = make(chan struct{})
	}
	c.mu.Unlock()
}

// Close heals the fault and releases any blackholed requests.
func (c *ChaosController) Close() {
	c.mu.Lock()
	if c.open {
		c.open = false
		close(c.healCh)
	}
	c.mu.Unlock()
}

// Injected reports how many requests were failed, delayed, or
// blackholed during the run.
func (c *ChaosController) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// affected reports whether a request from node `from` to req's host
// crosses a faulted link right now. Symmetric faults cut every link
// touching the target (either endpoint); asymmetric faults cut only
// traffic toward the target, so the target can still reach out — the
// classic one-way partition that keeps its heartbeats looking alive.
func (c *ChaosController) affected(from int, req *http.Request) bool {
	toTarget := c.targets[req.URL.Host]
	fromTarget := from == c.spec.Target
	if c.spec.Asymmetric {
		return toTarget && !fromTarget
	}
	return toTarget != fromTarget // XOR: a link, not a loopback
}

// chaosTransport wraps one node's peer transport with the controller's
// scripted faults.
type chaosTransport struct {
	c    *ChaosController
	from int // member index of the node this transport belongs to
	base http.RoundTripper
}

// Transport wraps base with fault injection for the node at member
// index from. Pass nil base for http.DefaultTransport.
func (c *ChaosController) Transport(from int, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &chaosTransport{c: c, from: from, base: base}
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c := t.c
	c.mu.Lock()
	if !c.open || !c.affected(t.from, req) {
		c.mu.Unlock()
		return t.base.RoundTrip(req)
	}
	mode := c.spec.Mode
	if mode == ChaosFlap {
		// Alternate partitioned/healthy half-cycles from the window start.
		cycle := time.Since(c.openedAt) / c.spec.FlapPeriod
		if cycle%2 == 1 {
			c.mu.Unlock()
			return t.base.RoundTrip(req)
		}
		mode = ChaosPartition
	}
	if mode == ChaosError && c.rng.Float64() >= c.spec.ErrorRate {
		c.mu.Unlock()
		return t.base.RoundTrip(req)
	}
	c.injected++
	healCh := c.healCh
	c.mu.Unlock()

	switch mode {
	case ChaosLatency:
		select {
		case <-time.After(c.spec.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case ChaosBlackhole:
		// Hang until the fault heals or the caller's deadline fires —
		// the failure mode that distinguishes per-call deadlines from
		// fast errors.
		select {
		case <-healCh:
			return t.base.RoundTrip(req)
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	default: // partition, error, flap's cut half-cycle
		return nil, errInjected
	}
}
