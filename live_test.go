package deepeye

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/deepeye/deepeye/internal/dataset"
)

const liveCSV = `when,region,amount,profit
2015-01-05,North,12,6
2015-02-09,South,7,3
2015-03-17,North,3,2
2015-04-02,East,15,8
2015-05-11,South,8,4
2015-06-19,West,4,2
2015-07-06,North,18,9
2015-08-14,East,6,3
2015-09-21,South,9,5
2015-10-02,West,11,6
2015-11-18,North,21,11
2015-12-05,East,13,7
`

// rebuildCold reconstructs an independent table from a snapshot's raw
// cells under its locked types — exactly what a cold load of the grown
// content produces. Nothing incremental (fingerprint, injected stats)
// carries over, so it is the ground-truth input for oracle runs.
func rebuildCold(t *testing.T, snap *Table) *Table {
	t.Helper()
	cols := make([]*dataset.Column, len(snap.Columns))
	for j, c := range snap.Columns {
		cols[j] = dataset.ForceType(c.Name, c.Raws(), c.Type)
	}
	nt, err := dataset.New(snap.Name, cols)
	if err != nil {
		t.Fatalf("rebuilding snapshot: %v", err)
	}
	return nt
}

func TestLiveRegistryDisabledByDefault(t *testing.T) {
	sys := New(Options{})
	if sys.RegistryEnabled() {
		t.Fatal("registry enabled without RegistrySize")
	}
	tab, err := LoadCSV("t", strings.NewReader(liveCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterTable("t", tab); !errors.Is(err, ErrRegistryDisabled) {
		t.Errorf("RegisterTable err = %v, want ErrRegistryDisabled", err)
	}
	if _, err := sys.AppendRows("t", nil); !errors.Is(err, ErrRegistryDisabled) {
		t.Errorf("AppendRows err = %v, want ErrRegistryDisabled", err)
	}
	if _, _, err := sys.TopKByName(context.Background(), "t", 3); !errors.Is(err, ErrRegistryDisabled) {
		t.Errorf("TopKByName err = %v, want ErrRegistryDisabled", err)
	}
	if got := sys.ListDatasets(); len(got) != 0 {
		t.Errorf("ListDatasets = %v on disabled registry", got)
	}
	if ok, _ := sys.DropDataset("t"); ok {
		t.Error("DropDataset reported success on disabled registry")
	}
}

// TestLiveTopKMatchesColdRun: a registry-served top-k equals a cold,
// cache-free run over the identical content — before and after appends.
func TestLiveTopKMatchesColdRun(t *testing.T) {
	sys := New(Options{IncludeOneColumn: true, CacheSize: 1 << 20, RegistrySize: 1 << 30})
	oracle := New(Options{IncludeOneColumn: true})
	tab, err := LoadCSV("live", strings.NewReader(liveCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterTable("live", tab); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	vs, info, err := sys.TopKByName(ctx, "live", 5)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.DatasetSnapshot("live")
	want, err := oracle.TopK(rebuildCold(t, snap), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVisualizations(t, want, vs, "epoch 0")

	// Warm read: answered from cache, still identical.
	vs2, info2, err := sys.TopKByName(ctx, "live", 5)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Fingerprint != info.Fingerprint {
		t.Fatal("fingerprint moved without an append")
	}
	assertSameVisualizations(t, want, vs2, "epoch 0 warm")

	// Append, then the serve must recompute on the grown content; the
	// stale epoch's answer must not leak from the cache.
	if _, err := sys.AppendRows("live", [][]string{
		{"2016-01-05", "North", "40", "22"},
		{"2016-02-09", "South", "2", "1"},
		{"2016-03-17", "West", "33", "19"},
	}); err != nil {
		t.Fatal(err)
	}
	vs3, info3, err := sys.TopKByName(ctx, "live", 5)
	if err != nil {
		t.Fatal(err)
	}
	if info3.Fingerprint == info.Fingerprint || info3.Epoch != 1 {
		t.Fatalf("append did not advance identity: %+v", info3)
	}
	grown, _ := sys.DatasetSnapshot("live")
	if grown.NumRows() != 15 {
		t.Fatalf("grown snapshot rows = %d, want 15", grown.NumRows())
	}
	wantGrown, err := oracle.TopK(rebuildCold(t, grown), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVisualizations(t, wantGrown, vs3, "epoch 1")
}

// TestLiveDifferentialConcurrentAppends is the subsystem's end-to-end
// differential guarantee: while appenders grow the dataset, every
// served top-k must be bit-identical to a cold TopK over the frozen
// snapshot it ran on, and after quiescence the served answer matches a
// cold run over the full grown table.
func TestLiveDifferentialConcurrentAppends(t *testing.T) {
	sys := New(Options{IncludeOneColumn: true, CacheSize: 1 << 20, RegistrySize: 1 << 30, Workers: 2})
	tab, err := LoadCSV("live", strings.NewReader(liveCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterTable("live", tab); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	regions := []string{"North", "South", "East", "West"}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	done := make(chan struct{})
	wg.Add(1)
	go func() { // appender
		defer wg.Done()
		defer close(done)
		for b := 0; b < 30; b++ {
			rows := [][]string{{
				fmt.Sprintf("2016-%02d-%02d", 1+b%12, 1+b%28),
				regions[b%len(regions)],
				fmt.Sprint(1 + b*3%50),
				fmt.Sprint(1 + b%20),
			}}
			if _, err := sys.AppendRows("live", rows); err != nil {
				errc <- err
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() { // reader: serve, freeze, compare against a cold oracle
			defer wg.Done()
			oracle := New(Options{IncludeOneColumn: true, Workers: 1})
			for {
				select {
				case <-done:
					return
				default:
				}
				vs, info, err := sys.TopKByName(ctx, "live", 5)
				if err != nil {
					errc <- err
					return
				}
				snap, ok := sys.DatasetSnapshot("live")
				if !ok {
					errc <- errors.New("snapshot missed")
					return
				}
				// An append may have landed between the serve and the
				// snapshot grab; only same-epoch pairs are comparable.
				if snap.Fingerprint() != info.Fingerprint {
					continue
				}
				want, err := oracle.TopK(rebuildCold(t, snap), 5)
				if err != nil {
					errc <- err
					return
				}
				assertSameVisualizations(t, want, vs, "concurrent serve")
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiescent: the served answer equals a cold run on the full table.
	vs, info, err := sys.TopKByName(ctx, "live", 5)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.DatasetSnapshot("live")
	if snap.NumRows() != 12+30 || info.Rows != 42 {
		t.Fatalf("final rows = %d/%d, want 42", snap.NumRows(), info.Rows)
	}
	oracle := New(Options{IncludeOneColumn: true})
	want, err := oracle.TopK(rebuildCold(t, snap), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVisualizations(t, want, vs, "post-append cold run")
}

// TestLiveSearchAndQueryByName covers the remaining by-name serving
// surfaces against their table-level equivalents on the same snapshot.
func TestLiveSearchAndQueryByName(t *testing.T) {
	sys := New(Options{IncludeOneColumn: true, RegistrySize: 1 << 30})
	tab, err := LoadCSV("live", strings.NewReader(liveCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterTable("live", tab); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	vs, _, err := sys.SearchByName(ctx, "live", "amount by region", 3)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := sys.DatasetSnapshot("live")
	want, err := sys.SearchCtx(ctx, snap, "amount by region", 3)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVisualizations(t, want, vs, "search by name")

	const q = "VISUALIZE bar SELECT region, SUM(amount) FROM live GROUP BY region"
	v, _, err := sys.QueryByName(ctx, "live", q)
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := sys.QueryCtx(ctx, snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVisualizations(t, []*Visualization{wantV}, []*Visualization{v}, "query by name")

	if _, _, err := sys.QueryByName(ctx, "missing", q); !errors.Is(err, ErrDatasetNotFound) {
		t.Errorf("QueryByName(missing) err = %v, want ErrDatasetNotFound", err)
	}
}

// TestLiveAppendCSVAndInfo covers the CSV append surface and the info
// accessors.
func TestLiveAppendCSVAndInfo(t *testing.T) {
	sys := New(Options{RegistrySize: 1 << 30})
	if _, err := sys.RegisterCSV("live", strings.NewReader(liveCSV)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.AppendCSV("live", strings.NewReader("when,region,amount,profit\n2016-01-05,North,1,1\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 1 || res.Rows != 13 {
		t.Fatalf("AppendCSV result = %+v", res)
	}
	info, err := sys.DatasetInfoByName("live")
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 13 || len(info.Columns) != 4 {
		t.Fatalf("info = %+v", info)
	}
	if list := sys.ListDatasets(); len(list) != 1 || list[0].Name != "live" {
		t.Fatalf("list = %+v", list)
	}
	if ok, err := sys.DropDataset("live"); err != nil || !ok {
		t.Fatal("DropDataset missed")
	}
	if _, err := sys.DatasetInfoByName("live"); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("info after drop err = %v", err)
	}
}
