// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI), one testing.B benchmark per artifact, plus component
// ablations for the design choices DESIGN.md calls out (graph builders,
// rule pruning, progressive selection). Quality metrics (F1, NDCG,
// coverage k) are attached to the benchmark output via ReportMetric, so
// `go test -bench=. -benchmem` doubles as the experiment log;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package deepeye_test

import (
	"testing"

	deepeye "github.com/deepeye/deepeye"
	"github.com/deepeye/deepeye/internal/datagen"
	"github.com/deepeye/deepeye/internal/experiments"
	"github.com/deepeye/deepeye/internal/rank"
	"github.com/deepeye/deepeye/internal/rules"
	"github.com/deepeye/deepeye/internal/vizql"
)

// benchCfg sizes the experiment benchmarks: 5% data scale keeps a full
// -bench=. run in minutes while preserving every shape.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, Seed: 42, MaxPerTable: 200, LTRTrees: 40}
}

// BenchmarkFigure1Charts regenerates the paper's four walk-through charts
// (Fig. 1) on the FlyDelay table via the visualization language.
func BenchmarkFigure1Charts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vs, err := experiments.Figure1Charts(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(vs) != 4 {
			b.Fatalf("charts = %d", len(vs))
		}
	}
}

// BenchmarkTable3Corpus regenerates the 42-dataset corpus statistics
// (Table III).
func BenchmarkTable3Corpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if s.Datasets != 42 {
			b.Fatalf("datasets = %d", s.Datasets)
		}
	}
}

// BenchmarkTable4TestSets regenerates Table IV (testing datasets with
// their good-chart counts under the crowd oracle).
func BenchmarkTable4TestSets(b *testing.B) {
	var goodTotal int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		goodTotal = 0
		for _, r := range rows {
			goodTotal += r.Charts
		}
	}
	b.ReportMetric(float64(goodTotal), "good-charts")
}

// BenchmarkTable6Coverage regenerates Table VI (smallest top-k covering
// the real-use-case charts of D1–D9).
func BenchmarkTable6Coverage(b *testing.B) {
	var maxK int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Coverage(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		maxK = 0
		for _, r := range rows {
			if r.Covered != r.Real {
				b.Fatalf("%s: covered %d of %d", r.Dataset, r.Covered, r.Real)
			}
			if r.KNeeded > maxK {
				maxK = r.KNeeded
			}
		}
	}
	b.ReportMetric(float64(maxK), "max-k")
}

// BenchmarkFigure10Recognition regenerates Fig. 10 (average recognition
// effectiveness of Bayes vs SVM vs the decision tree on X1–X10).
func BenchmarkFigure10Recognition(b *testing.B) {
	var f1 []float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Recognition(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		_, _, f1 = res.Averages()
	}
	b.ReportMetric(f1[0]*100, "F1-Bayes-%")
	b.ReportMetric(f1[1]*100, "F1-SVM-%")
	b.ReportMetric(f1[2]*100, "F1-DT-%")
}

// BenchmarkTable7PerChartType regenerates Table VII (per-chart-type
// recognition effectiveness).
func BenchmarkTable7PerChartType(b *testing.B) {
	var f [][]float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Recognition(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		_, _, f = res.TypeAverages()
	}
	// Report the decision tree's per-type F1 (B, L, P, S).
	b.ReportMetric(f[0][2]*100, "F1-DT-bar-%")
	b.ReportMetric(f[1][2]*100, "F1-DT-line-%")
	b.ReportMetric(f[2][2]*100, "F1-DT-pie-%")
	b.ReportMetric(f[3][2]*100, "F1-DT-scatter-%")
}

// BenchmarkTable8PerDataset regenerates Table VIII (per-dataset,
// per-chart-type F-measure).
func BenchmarkTable8PerDataset(b *testing.B) {
	var cells int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Recognition(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		cells = 0
		for di := range res.PerType {
			for ct := range res.PerType[di] {
				for mi := range res.PerType[di][ct] {
					c := res.PerType[di][ct][mi]
					if c.TP+c.FP+c.TN+c.FN > 0 {
						cells++
					}
				}
			}
		}
	}
	b.ReportMetric(float64(cells), "table-cells")
}

// BenchmarkFigure11Selection regenerates Fig. 11 (NDCG of learning-to-
// rank vs partial order vs hybrid on X1–X10).
func BenchmarkFigure11Selection(b *testing.B) {
	var avg []float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Selection(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		avg = res.MethodAverages()
	}
	b.ReportMetric(avg[0], "NDCG-LTR")
	b.ReportMetric(avg[1], "NDCG-PO")
	b.ReportMetric(avg[2], "NDCG-Hybrid")
}

// BenchmarkFigure12Efficiency regenerates Fig. 12 (end-to-end runtime of
// the four enumeration × selection configurations) on three
// representative datasets.
func BenchmarkFigure12Efficiency(b *testing.B) {
	var rows []experiments.EfficiencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Efficiency(benchCfg(), []int{0, 4, 9}) // X1, X5, X10
		if err != nil {
			b.Fatal(err)
		}
	}
	var el, rp float64
	for _, r := range rows {
		el += r.Total("EL").Seconds() * 1000
		rp += r.Total("RP").Seconds() * 1000
	}
	b.ReportMetric(el, "EL-ms")
	b.ReportMetric(rp, "RP-ms")
}

// BenchmarkTable_SearchSpace checks the Fig. 3 closed forms against the
// enumerator on the FlyDelay schema and times the enumeration.
func BenchmarkTable_SearchSpace(b *testing.B) {
	tab, err := datagen.TestSet(9, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	m := tab.NumCols()
	if vizql.SearchSpaceTwoColumns(m) != 528*m*(m-1) {
		b.Fatal("closed form mismatch")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs := vizql.EnumerateQueries(tab)
		if len(qs) > vizql.SearchSpaceTwoColumns(m) {
			b.Fatal("enumeration exceeds bound")
		}
	}
}

// --- component ablations -------------------------------------------------

func ablationNodes(b *testing.B) []*vizql.Node {
	b.Helper()
	tab, err := datagen.TestSet(9, 0.02) // FlyDelay at 2%
	if err != nil {
		b.Fatal(err)
	}
	nodes := vizql.ExecuteAll(tab, rules.EnumerateQueries(tab))
	return vizql.Dedupe(nodes)
}

// BenchmarkGraphBuildNaive / QuickSort / RangeTree compare the three
// dominance-graph construction algorithms of §IV-C.
func BenchmarkGraphBuildNaive(b *testing.B)     { benchGraphBuild(b, rank.BuildNaive) }
func BenchmarkGraphBuildQuickSort(b *testing.B) { benchGraphBuild(b, rank.BuildQuickSort) }
func BenchmarkGraphBuildRangeTree(b *testing.B) { benchGraphBuild(b, rank.BuildRangeTree) }

func benchGraphBuild(b *testing.B, method rank.BuildMethod) {
	nodes := ablationNodes(b)
	factors := rank.ComputeFactors(nodes, rank.FactorOptions{})
	b.ResetTimer()
	var comparisons int
	for i := 0; i < b.N; i++ {
		g := rank.BuildGraph(nodes, factors, method)
		comparisons = g.Comparisons()
	}
	b.ReportMetric(float64(comparisons), "comparisons")
}

// BenchmarkEnumerationExhaustive vs BenchmarkEnumerationRules isolates the
// §V-A rule pruning (the E vs R split of Fig. 12).
func BenchmarkEnumerationExhaustive(b *testing.B) {
	tab, err := datagen.TestSet(0, 1.0) // X1: 75 rows, 8 columns
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vizql.ExecuteAll(tab, vizql.EnumerateQueries(tab))
	}
}

func BenchmarkEnumerationRules(b *testing.B) {
	tab, err := datagen.TestSet(0, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vizql.ExecuteAll(tab, rules.EnumerateQueries(tab))
	}
}

// BenchmarkProgressiveTopK vs BenchmarkGraphTopK isolates the §V-B
// tournament against the full dominance-graph ranking.
func BenchmarkProgressiveTopK(b *testing.B) {
	tab, err := datagen.TestSet(2, 1.0) // X3: 23 columns
	if err != nil {
		b.Fatal(err)
	}
	sys := deepeye.New(deepeye.Options{Progressive: true, IncludeOneColumn: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TopK(tab, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphTopK(b *testing.B) {
	tab, err := datagen.TestSet(2, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	sys := deepeye.New(deepeye.Options{IncludeOneColumn: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TopK(tab, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformSharing isolates §V-B optimization 1: the shared
// bucketing pass inside ExecuteAll versus executing each query alone.
func BenchmarkTransformSharing(b *testing.B) {
	tab, err := datagen.TestSet(9, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	qs := rules.EnumerateQueries(tab)
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vizql.ExecuteAll(tab, qs)
		}
	})
	b.Run("individual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				_, _ = vizql.Execute(tab, q)
			}
		}
	})
}

// BenchmarkCrossValidation regenerates the paper's cross-validation
// check of §VI ("we also conducted cross validation and got similar
// results").
func BenchmarkCrossValidation(b *testing.B) {
	var mean []float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.MaxPerTable = 100
		res, err := experiments.CrossValidation(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		mean, _ = res.MeanStd()
	}
	b.ReportMetric(mean[2]*100, "F1-DT-%")
}

// BenchmarkHasseReduce isolates the transitive reduction that turns the
// dominance closure into the scored Hasse diagram.
func BenchmarkHasseReduce(b *testing.B) {
	nodes := ablationNodes(b)
	factors := rank.ComputeFactors(nodes, rank.FactorOptions{})
	g := rank.BuildGraph(nodes, factors, rank.BuildQuickSort)
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		edges = g.Reduce().NumEdges()
	}
	b.ReportMetric(float64(g.NumEdges()), "closure-edges")
	b.ReportMetric(float64(edges), "hasse-edges")
}

// BenchmarkMultiSuggest measures the multi-column extension end to end.
func BenchmarkMultiSuggest(b *testing.B) {
	tab, err := datagen.TestSet(9, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	sys := deepeye.New(deepeye.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SuggestMulti(tab, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeywordSearch measures the keyword-driven interface.
func BenchmarkKeywordSearch(b *testing.B) {
	tab, err := datagen.TestSet(9, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	sys := deepeye.New(deepeye.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Search(tab, "departure delay trend by hour", 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCandidatesSequential vs Parallel shows the §VI-D
// parallelizability of candidate materialization.
func BenchmarkCandidatesSequential(b *testing.B) { benchCandidates(b, 0) }
func BenchmarkCandidatesParallel(b *testing.B)   { benchCandidates(b, -1) }

func benchCandidates(b *testing.B, workers int) {
	tab, err := datagen.TestSet(9, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	sys := deepeye.New(deepeye.Options{Workers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Candidates(tab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRanking compares the §IV-C weight-aware score against
// plain topological sorting (the design choice DESIGN.md calls out).
func BenchmarkAblationRanking(b *testing.B) {
	var wa, topo float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRanking(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		wa, topo = res.Averages()
	}
	b.ReportMetric(wa, "NDCG-weight-aware")
	b.ReportMetric(topo, "NDCG-topological")
}

// BenchmarkFigure9FirstPage regenerates the Fig. 9 demo first page for D3.
func BenchmarkFigure9FirstPage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vs, err := experiments.Figure9FirstPage(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(vs) != 6 {
			b.Fatalf("charts = %d", len(vs))
		}
	}
}
